// Flow routing with link opening (step 15 of the paper's Algorithm 1).
//
// Flows are routed in decreasing bandwidth order over least-cost paths. The
// cost of traversing a (possibly not-yet-opened) link is a linear
// combination of the power increase of opening/reusing the link and the
// flow's latency budget:
//   cost = alpha_power * dP / P_norm
//        + (1 - alpha_power) * edge_cycles / flow_latency_budget
//
// Shutdown safety is enforced structurally: for a flow src-island A ->
// dst-island B, only switches in A, B and the intermediate NoC VI are
// admissible, and cross-island links may only connect A->B, A->intermediate,
// intermediate->intermediate, or intermediate->B ("the links are either
// established directly across the switches in the source and destination
// VIs or to the switches in the intermediate NoC island"). Intra-island
// flows stay entirely inside their island.
//
// Hot path: route_all_flows() sits inside the candidate-evaluation loop of
// the sweep, so it takes an optional RouterScratch (preallocated Dijkstra
// state, flat link-lookup matrix, port counters, fallback topology buffer —
// reset, not reallocated, between candidates) and an optional RouteBound
// (monotone lower bounds on the final metrics checked against the current
// Pareto front after every routed flow; see vinoc/core/prune.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "vinoc/core/topology.hpp"
#include "vinoc/models/noc_models.hpp"
#include "vinoc/soc/soc_spec.hpp"

namespace vinoc::core {

class ParetoBound;

struct RouterOptions {
  /// Weight of the power term vs. the latency term in the link cost.
  double alpha_power = 0.7;
  int link_width_bits = 32;
  models::Technology tech = models::Technology::cmos65nm();
  /// Maximum ports (max of in/out) per switch, indexed like topo.switches.
  std::vector<int> max_ports;
  /// Reject intra-island links whose wire delay exceeds one clock cycle at
  /// the island frequency (crossing links are absorbed by the bi-sync FIFO).
  bool enforce_wire_timing = true;
  /// Forbid direct island-to-island links, forcing all cross-island traffic
  /// through the intermediate NoC VI. Normally false; route_all_flows()
  /// retries with this set when the greedy pass strands a flow on port
  /// exhaustion (the paper's stated reason for the intermediate island:
  /// "By using switches in an intermediate NoC island, the number of
  /// switch-to-switch links can be reduced").
  bool forbid_direct_cross = false;
  /// Precomputed bandwidth_descending_order(spec) (the routing order). The
  /// order depends only on the spec, so sweep callers compute it once
  /// instead of re-sorting per candidate. nullptr = the router sorts
  /// internally (same result).
  const std::vector<std::size_t>* flow_order = nullptr;
};

/// The flow order every routing pass follows: bandwidth descending, ties
/// broken by index (step 15: "Choose flows in bandwidth order"). The single
/// definition shared by the router's internal fallback and every caller
/// that precomputes RouterOptions::flow_order.
[[nodiscard]] std::vector<std::size_t> bandwidth_descending_order(
    const soc::SocSpec& spec);

/// Width-invariant routing geometry of one candidate topology: the hop
/// length matrix plus, per (source-island, destination-island) flow class,
/// the CSR of admissible hops (target switch, length, crossing flags) every
/// Dijkstra of that class walks. Switch positions and the shutdown-safety
/// admissibility rule depend on neither the link width nor the island
/// frequencies, so ONE geometry serves every width of a sweep and both
/// routing passes of route_all_flows — it is reset once per candidate and
/// its classes are built lazily on first use.
struct RoutingGeometry {
  /// One contiguous range [lo, hi) of admissible target switches of one
  /// source switch, all in the same island — so the relaxation loop streams
  /// over dense dist / link / floor rows with one crossing flag per run.
  struct HopRun {
    int lo = 0;
    int hi = 0;
    unsigned char crossing = 0;
    /// Direct island-to-island run; the intermediate-retry pass skips these
    /// runs instead of rebuilding the class.
    unsigned char direct_cross = 0;
  };
  struct FlowClass {
    bool built = false;
    std::vector<int> run_begin;  ///< per switch id, runs[run_begin[u]..run_begin[u+1])
    std::vector<HopRun> runs;
  };
  std::size_t n = 0;
  std::size_t n_islands = 0;
  std::vector<double> hop_len;   ///< n x n flat matrix of Manhattan lengths
  /// fl(link_leakage_coeff * hop_len): width-invariant part of the
  /// opening-cost floor (see router.cpp), n x n.
  std::vector<double> leak_len;
  std::vector<FlowClass> classes;  ///< (n_islands + 1)^2 slots, lazily built
};

/// Reusable routing state. Buffers grow to the high-water mark of the
/// topologies routed through them and are reset — not reallocated — per
/// call; one instance per worker strand (see exec::WorkerLocal).
struct RouterScratch {
  std::vector<std::size_t> flow_order;  ///< used when options.flow_order == nullptr
  std::vector<double> dist;
  std::vector<int> pred;
  std::vector<int> pred_link;
  std::vector<int> path;
  std::vector<int> link_at;  ///< n x n flat matrix: link id or -1
  std::vector<double> max_wire_len;  ///< per-switch one-cycle wire length cap
  std::vector<int> ports_in;
  std::vector<int> ports_out;
  std::vector<int> island_of;        ///< per-switch island (flat; SwitchInst is cold)
  std::vector<double> freq_of;       ///< per-switch frequency (flat)
  std::vector<double> ebit_of;       ///< per-switch crossbar energy/bit at current ports
  /// Lazy (dist, index) min-heap of the per-flow Dijkstra; pops reproduce
  /// the dense scan's lowest-dist-then-lowest-index extraction exactly.
  std::vector<std::pair<double, int>> heap;
  std::vector<std::vector<double>> lane_dist;  ///< per-lane dist arrays
  std::vector<std::vector<std::pair<double, int>>> lane_heap;
  /// Route-equivalence certificate state (one certificate runs at a time,
  /// so the buffers are shared by every lane; see router.cpp).
  std::vector<double> cert_dist;
  std::vector<std::pair<double, int>> cert_heap;
  std::vector<int> cert_pred;
  std::vector<int> cert_pred_link;
  /// Per-candidate routing geometry, reset by route_all_flows[_multi] and
  /// shared by both passes (and, in lockstep mode, every lane).
  RoutingGeometry geometry;
  /// Geometry reuse across route_all_flows calls of the SAME candidate
  /// topology (e.g. one candidate evaluated at several widths): callers that
  /// guarantee unchanged switch positions/islands set geometry_token to a
  /// fresh non-zero value per candidate; the geometry is rebuilt only when
  /// the token changes. 0 (default) always rebuilds.
  std::uint64_t geometry_token = 0;
  std::uint64_t geometry_built_token = 0;
  std::uint64_t geometry_token_counter = 0;  ///< for callers minting tokens
  NocTopology fallback;  ///< pristine pre-routing copy for the retry pass
};

/// One FOLLOWER width of a multi-width structure pass. The leader width
/// routes; each lane re-derives every routing decision — capacity and port
/// admissibility, wire-timing caps, link-opening costs, Dijkstra
/// comparisons — from its own width/frequency tables with the follower's
/// exact solo arithmetic. A per-decision mismatch no longer dooms the lane
/// outright: the lane falls out of the per-decision lockstep for the
/// CURRENT flow only, and once the leader's path for that flow is known the
/// router runs the lane's PATH-LEVEL ROUTE-EQUIVALENCE CERTIFICATE — the
/// lane's own full solo Dijkstra for the flow over the (proven-identical)
/// shared state, with the lane's exact arithmetic and tie-breaks. When the
/// certified path equals the leader's (same nodes, same reuse-vs-open link
/// choices) the traces differed only in harmless near-tie flips: the
/// topology mutation is identical, the lane re-locks, and sharing
/// continues. Only a certificate REJECTION (a genuinely different path, or
/// one side unroutable) marks the lane `diverged`. A lane that survives to
/// the end is a proof its solo run would have produced the identical
/// topology and routes, so the caller can materialise its result from the
/// shared structure; a diverged lane must re-route its tail (cohort or solo
/// — see vinoc/core/width_eval.hpp).
struct WidthLane {
  int width_bits = 0;
  /// Per-switch tables at this lane's width (indexed like topo.switches).
  std::vector<double> switch_freq;
  std::vector<double> max_wire_len;  ///< read only when enforce_wire_timing
  std::vector<int> max_ports;
  /// Output: some routing decision differs from the leader's at this width
  /// AND the path-level certificate rejected the flow it happened in.
  bool diverged = false;
  /// Internal (router-managed): the lane left the per-decision lockstep for
  /// the current flow and awaits its certificate.
  bool pending = false;
  /// Output: the lane needed at least one accepted certificate — its trace
  /// differs from the leader's even though every routed path is identical.
  bool used_certificate = false;
  /// Output: accepted flow-level certificates on this lane.
  int certificate_accepts = 0;
  /// On divergence: the shared topology as it stood BEFORE the flow whose
  /// routing diverged (all earlier flows are proven identical), the
  /// position of that flow in the routing order, and the pass (1 = greedy,
  /// 2 = intermediate retry) it happened in. resume_route_flows() re-routes
  /// only this width-dependent TAIL instead of the whole candidate.
  NocTopology resume_topo;
  int resume_order_pos = -1;
  int resume_pass = 0;
};

/// One hop of a recorded reference route (see DeltaReference): the endpoint
/// switch ids plus whether the reference run OPENED a new link for it (as
/// opposed to reusing the pair's latest existing link). Island switch ids
/// are stable across the candidates of one enumeration group (identical
/// island partitions, built in identical order), which is what lets a
/// recorded hop be replayed on an adjacent candidate's topology.
struct DeltaHop {
  int src = -1;
  int dst = -1;
  unsigned char open = 0;
  friend bool operator==(const DeltaHop& a, const DeltaHop& b) {
    return a.src == b.src && a.dst == b.dst && a.open == b.open;
  }
};

/// The hop sequence of one routed flow, in path order. Empty when the
/// flow's endpoints share a switch (nothing to replay).
struct DeltaRouteRec {
  std::vector<DeltaHop> hops;
};

/// Recording of a REFERENCE candidate's pass-1 routing, consumed by the
/// delta evaluation of the adjacent candidates in its enumeration group
/// (same per-island switch counts, different intermediate-switch counts).
/// `records` holds the routed prefix of the flow order — a reference that
/// failed or was pruned mid-routing still yields a usable prefix. `p_norm`
/// is the reference Router's power normalizer; it is the ONLY cross-
/// candidate coupling of intra-island routing decisions (see router.cpp),
/// so delta reuse is gated on the consumer's normalizer being bit-equal.
struct DeltaReference {
  std::vector<DeltaRouteRec> records;  ///< by routing-order position (prefix)
  double p_norm = 0.0;
  bool valid = false;  ///< pass-1 routing ran with recording attached
};

/// Per-evaluation state of a delta (route-reuse) routing run; see
/// route_all_flows. `ref` is the input; everything else is output counters
/// and router-managed scratch. The router classifies each flow: intra-
/// island flows of an island whose state is still IN SYNC with the
/// reference's are replayed from the record (flows_reused; or, under
/// set_delta_cert_forced, re-derived by their own solo Dijkstra and
/// verified against it — flows_certified); everything else routes live
/// (flows_rerouted), and a live cross-island route whose hop sequence
/// differs from the record's taints the islands it touches, ending reuse
/// for them.
struct DeltaRouteState {
  const DeltaReference* ref = nullptr;
  /// Output: the consumer's power normalizer was bit-equal to the
  /// reference's, so replay was armed (always inspect before reading the
  /// counters as a reuse rate).
  bool pnorm_matched = false;
  int flows_reused = 0;     ///< replayed from the record, no Dijkstra
  int flows_certified = 0;  ///< forced-certificate mode: verified replays
  int flows_rerouted = 0;   ///< routed live (affected or tainted)
  int cert_rejects = 0;     ///< forced-certificate mismatches (expected 0)
  /// Router-managed scratch (reset per pass, buffers reused).
  std::vector<char> island_tainted;
  std::vector<DeltaHop> actual_hops;
};

/// Cost-bound pruning input for one routing call (see vinoc/core/prune.hpp).
/// All bounds are monotone non-decreasing as routing proceeds and never
/// exceed the candidate's final metrics, so a `front` hit is a proof the
/// finished design would be dominated-or-equal (never on the Pareto front).
struct RouteBound {
  /// Dominance oracle; nullptr disables pruning.
  const ParetoBound* front = nullptr;
  /// Pre-routing lower bound on the final noc_dynamic_w (NI energy, NI wire
  /// energy, per-switch floor) — computed by the evaluation stage.
  double base_power_lb_w = 0.0;
  /// Sum over flows of each flow's minimum achievable latency [cycles].
  double base_latency_sum_cycles = 0.0;
  /// Per-flow minimum latencies (parallel to spec.flows); as a flow routes,
  /// its minimum is replaced by its exact latency in the running sum.
  const std::vector<double>* min_flow_latency = nullptr;
  /// Per-switch traffic-energy floor [W per bit/s]: the switch's energy per
  /// bit at its core-only port count. Added for pass-through visits the
  /// endpoint floor did not count (optional tightening).
  const std::vector<double>* switch_ebit_floor = nullptr;
};

struct RouteOutcome {
  bool success = false;
  std::string failure_reason;  ///< human-readable, empty on success
  int flows_routed = 0;
  /// Index (into spec.flows) of the flow on which routing failed: latency
  /// budget violated or no admissible path. -1 on success or pre-flight
  /// failures (e.g. max_ports size mismatch).
  int failed_flow = -1;
  /// True when the failure was a violated latency budget (as opposed to a
  /// structural one: no admissible path, ports, capacity). Structured
  /// counterpart of the prose in failure_reason — classify on this, never
  /// on the message text (flow labels appear inside it).
  bool latency_violation = false;
  /// True when routing was abandoned because the cost bound proved the
  /// candidate dominated (success is false; nothing else is meaningful
  /// except the lower bounds below).
  bool pruned = false;
  /// True when per-flow bound checks were active for the pass that produced
  /// this outcome; on SUCCESS the lower bounds below then hold the
  /// last-checkpoint values (the bound trajectory is independent of the
  /// front consulted, so a later re-check against a richer front decides
  /// exactly what a run against that front would have decided).
  bool bound_checked = false;
  double pruned_power_lb_w = 0.0;        ///< power bound at the last checkpoint
  double pruned_latency_lb_cycles = 0.0; ///< avg-latency bound at the last checkpoint
};

/// Routes every flow of `spec` over `topo`'s switches, opening links as
/// needed. `topo` must arrive with switches / switch_of_core / island
/// frequencies / positions filled and links/routes empty; on success they
/// are populated. On failure `topo` is left in an unspecified state.
///
/// `scratch` (optional) supplies reusable buffers; nullptr falls back to
/// call-local allocation with identical results. `bound` (optional) enables
/// Pareto-bound pruning; mid-routing checks are automatically restricted to
/// topologies where the intermediate-island fallback pass cannot change the
/// outcome (no intermediate switches, or already in the fallback pass), so
/// pruning never hides a design the unpruned path would have produced.
///
/// `record` (optional) attaches a pure OBSERVER to the greedy pass: the
/// reference candidate's routed hop sequences and power normalizer are
/// captured into it (routing results are unchanged). `delta` (optional)
/// replays such a recording on an ADJACENT candidate of the same
/// enumeration group: flows whose admissible structure is untouched by the
/// config diff (intra-island flows, while their island's incremental state
/// is proven in sync with the reference's) reuse the recorded route
/// without a Dijkstra; affected flows (cross-island, or on a tainted
/// island) route live. Results are bit-identical to a run without `delta`
/// — replay is sound exactly because, per island, the router's state
/// equals the reference's at the same routing position until a diverging
/// live route taints it (see README).
RouteOutcome route_all_flows(NocTopology& topo, const soc::SocSpec& spec,
                             const RouterOptions& options,
                             RouterScratch* scratch = nullptr,
                             const RouteBound* bound = nullptr,
                             DeltaReference* record = nullptr,
                             DeltaRouteState* delta = nullptr);

/// route_all_flows() for the LEADER width of `options` while verifying, per
/// routing decision, that every lane in `lanes` would decide identically
/// (see WidthLane). Pruning bounds are NOT consulted — the structure pass
/// must run to completion so surviving lanes can be materialised from it;
/// callers replay the bound trajectory per width afterwards (see
/// vinoc/core/width_eval.hpp). `pass2_ran` (optional) reports whether the
/// intermediate-island retry pass produced the outcome, which callers need
/// to replay the per-width bound recording exactly.
RouteOutcome route_all_flows_multi(NocTopology& topo, const soc::SocSpec& spec,
                                   const RouterOptions& options,
                                   std::vector<WidthLane>& lanes,
                                   RouterScratch* scratch = nullptr,
                                   bool* pass2_ran = nullptr,
                                   RouteOutcome* pass1_failure = nullptr);

/// Resumes a SOLO routing run mid-sequence: `topo` must hold the exact
/// state after the first `resume_order_pos` flows of the routing order —
/// routes filled for them, links carrying exactly their bandwidth — as
/// captured by a diverged WidthLane (with its frequency fields patched to
/// the resuming width). Routes the remaining flows with decisions
/// bit-identical to a from-scratch run that routed the prefix the same
/// way; the caller handles the intermediate-island retry itself (the
/// resume covers a single pass). `options.forbid_direct_cross` selects
/// which pass's rules apply.
RouteOutcome resume_route_flows(NocTopology& topo, const soc::SocSpec& spec,
                                const RouterOptions& options,
                                int resume_order_pos,
                                RouterScratch* scratch = nullptr);

/// resume_route_flows() for a COHORT: the leader width of `options` resumes
/// the tail while every lane in `lanes` verifies it in the same width
/// lockstep (per-decision checks + path certificates) route_all_flows_multi
/// runs — used by the sweep to resume lanes that diverged at the SAME
/// decision with identical snapshots together instead of solo. With
/// resume_order_pos == 0 this routes a whole pass from a pristine topology
/// (the cohort form of the intermediate-island retry); the caller handles
/// pass transitions itself, exactly as with resume_route_flows().
RouteOutcome resume_route_flows_multi(NocTopology& topo,
                                      const soc::SocSpec& spec,
                                      const RouterOptions& options,
                                      int resume_order_pos,
                                      std::vector<WidthLane>& lanes,
                                      RouterScratch* scratch = nullptr);

/// Runtime toggle for the router's 4-wide relaxation filter (see
/// vinoc/core/simd.hpp): results are bit-identical either way — the scalar
/// path is the reference the tests compare against. Returns the previous
/// value. No-op (always scalar) in builds without the vector path.
bool set_router_simd_enabled(bool enabled);
[[nodiscard]] bool router_simd_enabled();

/// Runtime toggle forcing the delta evaluator to VERIFY every would-be
/// replay with the flow's own full solo Dijkstra (the route-equivalence
/// certificate, sharing Router::choose_hop with the width-lane
/// certificates) instead of trusting the in-sync proof: a reuse whose
/// certified path differs from the record is rejected — the island taints
/// and the certified path is used, so results stay bit-identical either
/// way. This trades away the entire delta speedup for a per-flow runtime
/// check of the soundness argument; tests and the A/B harness flip it on.
/// Returns the previous value.
bool set_delta_cert_forced(bool enabled);
[[nodiscard]] bool delta_cert_forced();

/// True if a link from switch `a` to switch `b` is admissible for a flow
/// going from island `src_isl` to island `dst_isl` under the shutdown-safety
/// rule. Exposed for tests and the safety verifier.
[[nodiscard]] bool link_admissible(soc::IslandId a_isl, soc::IslandId b_isl,
                                   soc::IslandId src_isl, soc::IslandId dst_isl);

}  // namespace vinoc::core

// Flow routing with link opening (step 15 of the paper's Algorithm 1).
//
// Flows are routed in decreasing bandwidth order over least-cost paths. The
// cost of traversing a (possibly not-yet-opened) link is a linear
// combination of the power increase of opening/reusing the link and the
// flow's latency budget:
//   cost = alpha_power * dP / P_norm
//        + (1 - alpha_power) * edge_cycles / flow_latency_budget
//
// Shutdown safety is enforced structurally: for a flow src-island A ->
// dst-island B, only switches in A, B and the intermediate NoC VI are
// admissible, and cross-island links may only connect A->B, A->intermediate,
// intermediate->intermediate, or intermediate->B ("the links are either
// established directly across the switches in the source and destination
// VIs or to the switches in the intermediate NoC island"). Intra-island
// flows stay entirely inside their island.
//
// Hot path: route_all_flows() sits inside the candidate-evaluation loop of
// the sweep, so it takes an optional RouterScratch (preallocated Dijkstra
// state, flat link-lookup matrix, port counters, fallback topology buffer —
// reset, not reallocated, between candidates) and an optional RouteBound
// (monotone lower bounds on the final metrics checked against the current
// Pareto front after every routed flow; see vinoc/core/prune.hpp).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "vinoc/core/topology.hpp"
#include "vinoc/models/noc_models.hpp"
#include "vinoc/soc/soc_spec.hpp"

namespace vinoc::core {

class ParetoBound;

struct RouterOptions {
  /// Weight of the power term vs. the latency term in the link cost.
  double alpha_power = 0.7;
  int link_width_bits = 32;
  models::Technology tech = models::Technology::cmos65nm();
  /// Maximum ports (max of in/out) per switch, indexed like topo.switches.
  std::vector<int> max_ports;
  /// Reject intra-island links whose wire delay exceeds one clock cycle at
  /// the island frequency (crossing links are absorbed by the bi-sync FIFO).
  bool enforce_wire_timing = true;
  /// Forbid direct island-to-island links, forcing all cross-island traffic
  /// through the intermediate NoC VI. Normally false; route_all_flows()
  /// retries with this set when the greedy pass strands a flow on port
  /// exhaustion (the paper's stated reason for the intermediate island:
  /// "By using switches in an intermediate NoC island, the number of
  /// switch-to-switch links can be reduced").
  bool forbid_direct_cross = false;
  /// Precomputed bandwidth_descending_order(spec) (the routing order). The
  /// order depends only on the spec, so sweep callers compute it once
  /// instead of re-sorting per candidate. nullptr = the router sorts
  /// internally (same result).
  const std::vector<std::size_t>* flow_order = nullptr;
};

/// The flow order every routing pass follows: bandwidth descending, ties
/// broken by index (step 15: "Choose flows in bandwidth order"). The single
/// definition shared by the router's internal fallback and every caller
/// that precomputes RouterOptions::flow_order.
[[nodiscard]] std::vector<std::size_t> bandwidth_descending_order(
    const soc::SocSpec& spec);

/// Reusable routing state. Buffers grow to the high-water mark of the
/// topologies routed through them and are reset — not reallocated — per
/// call; one instance per worker strand (see exec::WorkerLocal).
struct RouterScratch {
  std::vector<std::size_t> flow_order;  ///< used when options.flow_order == nullptr
  std::vector<double> dist;
  std::vector<int> pred;
  std::vector<int> pred_link;
  std::vector<char> done;
  std::vector<int> path;
  std::vector<int> nodes;    ///< admissible-switch subset of one flow's Dijkstra
  std::vector<int> link_at;  ///< n x n flat matrix: link id or -1
  std::vector<double> hop_len;       ///< n x n flat matrix of Manhattan lengths
  std::vector<double> max_wire_len;  ///< per-switch one-cycle wire length cap
  std::vector<int> ports_in;
  std::vector<int> ports_out;
  NocTopology fallback;  ///< pristine pre-routing copy for the retry pass
};

/// Cost-bound pruning input for one routing call (see vinoc/core/prune.hpp).
/// All bounds are monotone non-decreasing as routing proceeds and never
/// exceed the candidate's final metrics, so a `front` hit is a proof the
/// finished design would be dominated-or-equal (never on the Pareto front).
struct RouteBound {
  /// Dominance oracle; nullptr disables pruning.
  const ParetoBound* front = nullptr;
  /// Pre-routing lower bound on the final noc_dynamic_w (NI energy, NI wire
  /// energy, per-switch floor) — computed by the evaluation stage.
  double base_power_lb_w = 0.0;
  /// Sum over flows of each flow's minimum achievable latency [cycles].
  double base_latency_sum_cycles = 0.0;
  /// Per-flow minimum latencies (parallel to spec.flows); as a flow routes,
  /// its minimum is replaced by its exact latency in the running sum.
  const std::vector<double>* min_flow_latency = nullptr;
  /// Per-switch traffic-energy floor [W per bit/s]: the switch's energy per
  /// bit at its core-only port count. Added for pass-through visits the
  /// endpoint floor did not count (optional tightening).
  const std::vector<double>* switch_ebit_floor = nullptr;
};

struct RouteOutcome {
  bool success = false;
  std::string failure_reason;  ///< human-readable, empty on success
  int flows_routed = 0;
  /// Index (into spec.flows) of the flow on which routing failed: latency
  /// budget violated or no admissible path. -1 on success or pre-flight
  /// failures (e.g. max_ports size mismatch).
  int failed_flow = -1;
  /// True when the failure was a violated latency budget (as opposed to a
  /// structural one: no admissible path, ports, capacity). Structured
  /// counterpart of the prose in failure_reason — classify on this, never
  /// on the message text (flow labels appear inside it).
  bool latency_violation = false;
  /// True when routing was abandoned because the cost bound proved the
  /// candidate dominated (success is false; nothing else is meaningful
  /// except the lower bounds below).
  bool pruned = false;
  /// True when per-flow bound checks were active for the pass that produced
  /// this outcome; on SUCCESS the lower bounds below then hold the
  /// last-checkpoint values (the bound trajectory is independent of the
  /// front consulted, so a later re-check against a richer front decides
  /// exactly what a run against that front would have decided).
  bool bound_checked = false;
  double pruned_power_lb_w = 0.0;        ///< power bound at the last checkpoint
  double pruned_latency_lb_cycles = 0.0; ///< avg-latency bound at the last checkpoint
};

/// Routes every flow of `spec` over `topo`'s switches, opening links as
/// needed. `topo` must arrive with switches / switch_of_core / island
/// frequencies / positions filled and links/routes empty; on success they
/// are populated. On failure `topo` is left in an unspecified state.
///
/// `scratch` (optional) supplies reusable buffers; nullptr falls back to
/// call-local allocation with identical results. `bound` (optional) enables
/// Pareto-bound pruning; mid-routing checks are automatically restricted to
/// topologies where the intermediate-island fallback pass cannot change the
/// outcome (no intermediate switches, or already in the fallback pass), so
/// pruning never hides a design the unpruned path would have produced.
RouteOutcome route_all_flows(NocTopology& topo, const soc::SocSpec& spec,
                             const RouterOptions& options,
                             RouterScratch* scratch = nullptr,
                             const RouteBound* bound = nullptr);

/// True if a link from switch `a` to switch `b` is admissible for a flow
/// going from island `src_isl` to island `dst_isl` under the shutdown-safety
/// rule. Exposed for tests and the safety verifier.
[[nodiscard]] bool link_admissible(soc::IslandId a_isl, soc::IslandId b_isl,
                                   soc::IslandId src_isl, soc::IslandId dst_isl);

}  // namespace vinoc::core

// Flow routing with link opening (step 15 of the paper's Algorithm 1).
//
// Flows are routed in decreasing bandwidth order over least-cost paths. The
// cost of traversing a (possibly not-yet-opened) link is a linear
// combination of the power increase of opening/reusing the link and the
// flow's latency budget:
//   cost = alpha_power * dP / P_norm
//        + (1 - alpha_power) * edge_cycles / flow_latency_budget
//
// Shutdown safety is enforced structurally: for a flow src-island A ->
// dst-island B, only switches in A, B and the intermediate NoC VI are
// admissible, and cross-island links may only connect A->B, A->intermediate,
// intermediate->intermediate, or intermediate->B ("the links are either
// established directly across the switches in the source and destination
// VIs or to the switches in the intermediate NoC island"). Intra-island
// flows stay entirely inside their island.
#pragma once

#include <string>
#include <vector>

#include "vinoc/core/topology.hpp"
#include "vinoc/models/noc_models.hpp"
#include "vinoc/soc/soc_spec.hpp"

namespace vinoc::core {

struct RouterOptions {
  /// Weight of the power term vs. the latency term in the link cost.
  double alpha_power = 0.7;
  int link_width_bits = 32;
  models::Technology tech = models::Technology::cmos65nm();
  /// Maximum ports (max of in/out) per switch, indexed like topo.switches.
  std::vector<int> max_ports;
  /// Reject intra-island links whose wire delay exceeds one clock cycle at
  /// the island frequency (crossing links are absorbed by the bi-sync FIFO).
  bool enforce_wire_timing = true;
  /// Forbid direct island-to-island links, forcing all cross-island traffic
  /// through the intermediate NoC VI. Normally false; route_all_flows()
  /// retries with this set when the greedy pass strands a flow on port
  /// exhaustion (the paper's stated reason for the intermediate island:
  /// "By using switches in an intermediate NoC island, the number of
  /// switch-to-switch links can be reduced").
  bool forbid_direct_cross = false;
};

struct RouteOutcome {
  bool success = false;
  std::string failure_reason;  ///< human-readable, empty on success
  int flows_routed = 0;
};

/// Routes every flow of `spec` over `topo`'s switches, opening links as
/// needed. `topo` must arrive with switches / switch_of_core / island
/// frequencies / positions filled and links/routes empty; on success they
/// are populated. On failure `topo` is left in an unspecified state.
RouteOutcome route_all_flows(NocTopology& topo, const soc::SocSpec& spec,
                             const RouterOptions& options);

/// True if a link from switch `a` to switch `b` is admissible for a flow
/// going from island `src_isl` to island `dst_isl` under the shutdown-safety
/// rule. Exposed for tests and the safety verifier.
[[nodiscard]] bool link_admissible(soc::IslandId a_isl, soc::IslandId b_isl,
                                   soc::IslandId src_isl, soc::IslandId dst_isl);

}  // namespace vinoc::core

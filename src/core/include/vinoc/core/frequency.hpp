// Steps 1-2 of the paper's Algorithm 1: per-island NoC frequency, maximum
// switch size, and minimum switch count.
//
// The NI<->switch link of a core must carry the core's aggregate inbound
// (respectively outbound) traffic, and link bandwidth = data width x clock,
// so the island's NoC clock is fixed by its hungriest NI link ("the
// frequency of the switches in an island is determined by the link that has
// to carry the highest bandwidth from or to a core in the island").
// The crossbar critical path then caps the switch port count at that clock
// (max_sw_size), which in turn lower-bounds the switch count.
#pragma once

#include <vector>

#include "vinoc/models/noc_models.hpp"
#include "vinoc/soc/soc_spec.hpp"

namespace vinoc::core {

struct IslandNocParams {
  double freq_hz = 0.0;
  int max_sw_size = 0;    ///< max ports per switch at freq_hz
  int min_switches = 0;   ///< ceil(cores_in_island / usable ports)
  int core_count = 0;
};

/// Derives parameters for every island. `port_reserve` ports per switch are
/// kept free for inter-switch links when computing min_switches (a switch
/// fully packed with cores could never be connected to the rest of the NoC).
[[nodiscard]] std::vector<IslandNocParams> derive_island_params(
    const soc::SocSpec& spec, const models::Technology& tech,
    int link_width_bits, int port_reserve = 1);

/// Parameters of the intermediate NoC VI: it relays traffic between islands,
/// so it runs at the fastest island clock (snapped to the grid).
[[nodiscard]] IslandNocParams derive_intermediate_params(
    const std::vector<IslandNocParams>& island_params,
    const models::Technology& tech);

}  // namespace vinoc::core

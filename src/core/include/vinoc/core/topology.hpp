// Synthesized NoC topology: switches, links, per-flow routes, placement.
//
// Conventions:
//  * Every core attaches to exactly one switch through its NI (paper §4:
//    "a core is connected to only one switch, through a NI").
//  * SwitchInst::island == kIntermediateIsland (-1) marks a switch in the
//    optional intermediate "NoC VI", which is never shut down.
//  * Links are unidirectional; a link whose endpoints sit in different
//    islands carries a bi-synchronous FIFO (voltage+frequency conversion)
//    and costs Technology::fifo_latency_cycles instead of one cycle.
//  * Zero-load latency of a route with S switches and C island crossings:
//      2 (NI<->switch links) + S * sw_pipeline + (S - 1 - C) * 1 + C * fifo
//    i.e. every hop link costs 1 cycle except crossings, which cost the
//    FIFO latency. This matches the paper's "4 cycle delay ... on the
//    voltage-frequency converters" accounting.
#pragma once

#include <string>
#include <vector>

#include "vinoc/floorplan/floorplan.hpp"
#include "vinoc/models/noc_models.hpp"
#include "vinoc/soc/soc_spec.hpp"

namespace vinoc::core {

inline constexpr soc::IslandId kIntermediateIsland = -1;

struct SwitchInst {
  soc::IslandId island = 0;  ///< kIntermediateIsland for the NoC VI
  double freq_hz = 0.0;
  floorplan::Point pos;
  std::vector<soc::CoreId> cores;  ///< cores attached through NIs
};

struct TopLink {
  int src_switch = -1;
  int dst_switch = -1;
  bool crosses_island = false;  ///< bi-sync FIFO present
  double length_mm = 0.0;
  double carried_bw_bits_per_s = 0.0;
  std::vector<int> flows;  ///< indices into SocSpec::flows
};

struct FlowRoute {
  int src_switch = -1;
  int dst_switch = -1;
  /// Inter-switch links traversed, in order (empty if src == dst switch).
  std::vector<int> links;
  double latency_cycles = 0.0;
  int crossings = 0;  ///< island boundaries crossed
};

/// Aggregate quality metrics of one topology (NoC only; SoC-level
/// accounting lives in vinoc::power).
struct Metrics {
  double noc_dynamic_w = 0.0;  ///< switches + links + NIs + FIFOs
  // Breakdown of noc_dynamic_w (wires to/from NIs count as links):
  double switch_dynamic_w = 0.0;
  double link_dynamic_w = 0.0;
  double ni_dynamic_w = 0.0;
  double fifo_dynamic_w = 0.0;
  /// The metric of the paper's Figure 2: "switches, links and the
  /// synchronizers" (NI protocol-conversion logic excluded).
  [[nodiscard]] double paper_noc_dynamic_w() const {
    return switch_dynamic_w + link_dynamic_w + fifo_dynamic_w;
  }
  double noc_leakage_w = 0.0;
  double noc_area_mm2 = 0.0;
  double avg_latency_cycles = 0.0;  ///< zero-load, averaged over flows
  double max_latency_cycles = 0.0;
  double total_wire_mm = 0.0;  ///< inter-switch + NI attach wires
  int switch_count = 0;
  int link_count = 0;
  int fifo_count = 0;
  int max_switch_ports = 0;
};

struct NocTopology {
  std::vector<SwitchInst> switches;
  std::vector<int> switch_of_core;  ///< per core, index into switches
  std::vector<TopLink> links;
  std::vector<FlowRoute> routes;  ///< parallel to SocSpec::flows
  /// NoC clock per island; index island_count() holds the intermediate VI's.
  std::vector<double> island_freq_hz;
  double intermediate_freq_hz = 0.0;
  /// Wire length of each core's NI<->switch connection [mm].
  std::vector<double> ni_wire_mm;

  [[nodiscard]] int switch_ports_in(int sw) const;
  [[nodiscard]] int switch_ports_out(int sw) const;

  /// Aggregate bandwidth traversing a switch (all flows whose route visits
  /// it, including at the endpoints) [bits/s].
  [[nodiscard]] double switch_aggregate_bw(int sw, const soc::SocSpec& spec) const;

  /// Structural sanity: route endpoints match core attachment, link chains
  /// are contiguous, carried bandwidths equal the sum of routed flows,
  /// crossing flags match endpoint islands. Returns problems (empty = ok).
  [[nodiscard]] std::vector<std::string> validate(const soc::SocSpec& spec) const;
};

/// Reusable buffers for compute_metrics (hot path: called once per routed
/// candidate). Reset, not reallocated, per call; one per worker strand.
struct MetricsScratch {
  std::vector<int> ports_in;
  std::vector<int> ports_out;
  std::vector<double> switch_bw;
  std::vector<int> visit_stamp;  ///< per-switch, last flow that counted it
  std::vector<double> core_in_bw;
  std::vector<double> core_out_bw;
};

/// Evaluates power/area/latency of `topo` for `spec` under `tech`.
/// `link_width_bits` is the NoC data width (the paper fixes it as an input).
/// `scratch` (optional) supplies reusable buffers; results are identical
/// with or without it — per-switch traffic and port counts accumulate in
/// the same order either way.
[[nodiscard]] Metrics compute_metrics(const NocTopology& topo,
                                      const soc::SocSpec& spec,
                                      const models::Technology& tech,
                                      int link_width_bits = 32,
                                      MetricsScratch* scratch = nullptr);

/// Zero-load latency of one route under the header's accounting.
[[nodiscard]] double route_latency_cycles(const NocTopology& topo,
                                          const FlowRoute& route,
                                          const models::Technology& tech);

}  // namespace vinoc::core

// Topology synthesis — the paper's Algorithm 1.
//
// Pipeline per design point:
//   1. per-island NoC frequency + max switch size + min switch count
//      (vinoc/core/frequency.hpp);
//   2. sweep the switch count of every island from its minimum up to its
//      core count (outer loop), min-cut partitioning each island's VCG so
//      cores sharing a block share a switch (vinoc/partition);
//   3. sweep the intermediate NoC VI's switch count (inner loop);
//   4. route all flows in bandwidth order over least-cost paths with the
//      link-opening cost function (vinoc/core/router.hpp);
//   5. if every flow is routed within its latency budget, insert the NoC
//      components on the floorplan, evaluate power/area/latency and save
//      the design point.
//
// Loop-index note (documented deviation): the paper writes k = i + min_sw_j
// for iteration i = 1..max|Vj|, which would skip the minimum-switch design;
// we use k = min(min_sw_j + (i-1), |Vj|) so the minimum is explored first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "vinoc/core/frequency.hpp"
#include "vinoc/core/topology.hpp"
#include "vinoc/exec/cancel.hpp"
#include "vinoc/floorplan/floorplan.hpp"
#include "vinoc/models/technology.hpp"
#include "vinoc/soc/soc_spec.hpp"

namespace vinoc::exec {
class ThreadPool;
}  // namespace vinoc::exec

namespace vinoc::core {

/// Thrown by synthesize() when the requested link width is infeasible for
/// the spec: some NI link's bandwidth exceeds what any switch frequency can
/// sustain at that width. Distinct from plain std::invalid_argument so width
/// sweeps (explore_link_widths) can record the feasibility boundary while
/// still propagating genuine spec/option errors.
struct InfeasibleWidthError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

/// Progress of one synthesize() run, reported after each candidate finishes
/// evaluation. `completed` counts evaluated candidates, `total` is the size
/// of the enumerated candidate list (== stats.configs_explored at the end).
/// `link_width_bits` identifies the run, so a renderer fed by a concurrent
/// width sweep (explore_link_widths) can tell the interleaved per-width
/// streams apart — `completed` is monotonic per width, not across widths.
struct SynthesisProgress {
  std::size_t completed = 0;
  std::size_t total = 0;
  int link_width_bits = 0;
};

struct SynthesisOptions {
  /// Definition 1's alpha: bandwidth vs. latency weight in VCG edge weights.
  double alpha = 0.6;
  /// Router's power-vs-latency weight in the link-opening cost.
  double alpha_power = 0.7;
  /// NoC data width (fixed, per the paper; vary it externally for sweeps).
  int link_width_bits = 32;
  /// Whether power/ground resources allow an intermediate NoC VI (input to
  /// the method, per Section 3.2).
  bool allow_intermediate_island = true;
  /// Upper bound for the intermediate-VI switch sweep; -1 = auto
  /// (max over islands of the island's core count, at least 2).
  int max_intermediate_switches = -1;
  /// Ports per switch reserved for inter-switch links when bounding the
  /// min-cut block size.
  int port_reserve = 1;
  models::Technology tech = models::Technology::cmos65nm();
  floorplan::FloorplanOptions floorplan;
  unsigned partition_seed = 1;
  bool enforce_wire_timing = true;
  /// Reject design points whose channel dependency graph is cyclic
  /// (Dally–Seitz criterion; see vinoc/core/deadlock.hpp). Extension beyond
  /// the paper: with this on (default), every saved point is provably free
  /// of routing deadlock.
  bool enforce_deadlock_freedom = true;
  /// Pareto-bound pruning of the candidate sweep: abandon a candidate as
  /// soon as monotone lower bounds on its final (power, latency) are
  /// dominated by the current front (see vinoc/core/prune.hpp). The Pareto
  /// front, best_power() and best_latency() are PROVABLY unaffected; only
  /// dominated interior points disappear from `points` (counted in
  /// stats.rejected_pruned). Turn off to keep every routed design point.
  bool prune = true;
  /// With pruning on, replay any candidate whose concurrent prune decision
  /// could differ from the sequential one, making the result bit-identical
  /// for every thread count (the replays are rare; threads == 1 never
  /// replays). Turning this off skips the replays: the front is still
  /// exact, but WHICH dominated points are dropped may vary with thread
  /// scheduling.
  bool deterministic_prune = true;
  /// Candidate-level delta evaluation: the first candidate of each
  /// enumeration group (same per-island switch counts, k_int = 0) records
  /// its routed hop sequences; adjacent group members replay the routes of
  /// flows the config diff cannot affect and re-route only the affected
  /// ones (see route_all_flows in vinoc/core/router.hpp). Results are
  /// bit-identical either way — like `threads`, this is purely a
  /// wall-clock knob (excluded from campaign job keys) — so it exists to
  /// A/B the delta path against from-scratch evaluation.
  bool delta_eval = true;
  /// Worker strands for the candidate-evaluation stage: 1 = fully
  /// sequential (default), 0 = hardware concurrency, N = exactly N.
  /// Results are bit-identical for every value (candidates are evaluated
  /// independently and merged in enumeration order; pruning stays
  /// deterministic via deterministic_prune), so this is purely a
  /// wall-clock knob.
  int threads = 1;
  /// Optional progress hook, invoked after each candidate evaluation with
  /// monotonically increasing `completed`. With threads != 1 it is called
  /// from worker threads (serialised by an internal mutex); keep it cheap
  /// and do not call back into the synthesis API from inside it.
  std::function<void(const SynthesisProgress&)> on_progress;
  /// Cooperative cancellation: when set, synthesize() and
  /// synthesize_width_set() poll the token between candidate evaluations
  /// and abort with exec::CancelledError once it reports cancelled — the
  /// campaign engine's job timeouts, --deadline budget and SIGINT handling
  /// all arrive through here. Like `threads`/`on_progress` this is a pure
  /// wall-clock control knob, excluded from campaign job keys (spec_hash).
  /// Must outlive the synthesis call.
  const exec::CancelToken* cancel = nullptr;
};

/// One saved design point (a full topology plus its evaluation).
struct DesignPoint {
  std::vector<int> switches_per_island;
  int intermediate_switches = 0;
  NocTopology topology;
  Metrics metrics;
};

struct SynthesisStats {
  int configs_explored = 0;
  int configs_routed = 0;      ///< routing succeeded
  int configs_saved = 0;       ///< saved as design points
  int rejected_unroutable = 0;
  int rejected_latency = 0;
  int rejected_duplicate = 0;  ///< same effective design seen at another k_int
  int rejected_deadlock = 0;
  /// Abandoned by Pareto-bound pruning (provably dominated; never on the
  /// front). Always 0 with options.prune == false. Counted as explored but
  /// not as routed.
  int rejected_pruned = 0;
  double elapsed_seconds = 0.0;

  // --- Observability (excluded from result fingerprints; the fields below
  // depend on worker scheduling and the sweep's adaptive lockstep vote, so
  // they are NOT part of the bit-identity guarantee). ---

  /// Sweep-structured sharing telemetry of THIS width's results, filled by
  /// synthesize_width_set (always 0 for a solo synthesize()): how each
  /// candidate result was obtained — materialised from a shared structure
  /// with a trace identical to the leader's (`width_shared`), shared via
  /// >= 1 accepted path-level route-equivalence certificate
  /// (`width_certified`, a subset of `width_shared`), tail resumed in a
  /// same-decision cohort lockstep (`width_cohort`), or tail re-routed solo
  /// after a genuine divergence (`width_fallback`).
  int width_shared = 0;
  int width_certified = 0;
  int width_cohort = 0;
  int width_fallback = 0;
  /// Delta-evaluation telemetry (options.delta_eval): member candidates
  /// whose evaluation ran with replay armed (a published group reference
  /// with a bit-equal power normalizer), and their per-flow tallies —
  /// routes replayed without a Dijkstra (`delta_flows_reused`), replays
  /// verified by the forced route-equivalence certificate
  /// (`delta_flows_certified`, only under set_delta_cert_forced), and
  /// flows routed live because the config diff could affect them
  /// (`delta_flows_rerouted`). `delta_cert_rejects` counts forced-
  /// certificate mismatches (expected 0; a reject falls back to the
  /// certified path, preserving bit-identity).
  int delta_candidates = 0;
  long long delta_flows_reused = 0;
  long long delta_flows_certified = 0;
  long long delta_flows_rerouted = 0;
  int delta_cert_rejects = 0;
  /// Fraction of delta-eligible flows served without a live Dijkstra.
  [[nodiscard]] double delta_reuse_rate() const {
    const long long reused = delta_flows_reused + delta_flows_certified;
    const long long total = reused + delta_flows_rerouted;
    return total > 0 ? static_cast<double>(reused) / static_cast<double>(total)
                     : 0.0;
  }
  /// High-water mark of candidate outcomes buffered by the streaming merge
  /// (results waiting for an enumeration-order predecessor still being
  /// evaluated). Caps peak memory: with threads == 1 it equals one
  /// evaluation batch (1 for synthesize(), the width-class size for the
  /// sweep, which reports the sweep-global peak on every entry).
  int peak_buffered_outcomes = 0;
};

struct SynthesisResult {
  std::vector<DesignPoint> points;
  /// Indices into `points` forming the (noc_dynamic_w, avg_latency_cycles)
  /// Pareto front, sorted by increasing power.
  std::vector<std::size_t> pareto;
  std::vector<IslandNocParams> island_params;
  IslandNocParams intermediate_params;
  floorplan::Floorplan floorplan;
  SynthesisStats stats;

  [[nodiscard]] bool empty() const { return points.empty(); }
  /// Design point with the smallest NoC dynamic power (throws if empty).
  [[nodiscard]] const DesignPoint& best_power() const;
  /// Design point with the smallest average latency (throws if empty).
  [[nodiscard]] const DesignPoint& best_latency() const;
};

/// Runs Algorithm 1 on `spec` (throws std::invalid_argument if
/// spec.validate() reports problems, InfeasibleWidthError if an NI link
/// cannot be sustained at options.link_width_bits).
///
/// Staged engine: candidates are first ENUMERATED (pure, sequential — the
/// (outer x inner) sweep of the paper, deduplicated on saturation), their
/// per-(island, switch-count) min-cut partitions computed once each, then
/// every candidate is EVALUATED independently (partition lookup -> switch
/// placement -> routing -> metrics) across options.threads strands and
/// merged back in enumeration order, so the result does not depend on the
/// thread count. See vinoc/core/candidates.hpp for the stage boundary.
SynthesisResult synthesize(const soc::SocSpec& spec,
                           const SynthesisOptions& options = {});

/// Same, but evaluates candidates on an existing pool instead of creating
/// one from options.threads. Used by explore_link_widths() so the width
/// sweep and every per-width candidate sweep share one set of workers;
/// nested use is safe (see vinoc/exec/thread_pool.hpp).
SynthesisResult synthesize(const soc::SocSpec& spec,
                           const SynthesisOptions& options,
                           exec::ThreadPool& pool);

class EvalScratchPool;  // vinoc/core/candidates.hpp

/// Same, additionally reusing the caller's per-worker scratch arenas
/// (preallocated router/metrics/placement buffers). Batch drivers — the
/// width sweep, the campaign engine — keep one EvalScratchPool alive across
/// many synthesize() calls so buffers are allocated once per worker, not
/// once per run. Results are identical with or without it.
SynthesisResult synthesize(const soc::SocSpec& spec,
                           const SynthesisOptions& options,
                           exec::ThreadPool& pool, EvalScratchPool& scratch);

}  // namespace vinoc::core

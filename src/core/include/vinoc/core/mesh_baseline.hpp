// Regular 2D-mesh baseline (the related-work alternative).
//
// The paper's related work ([9]-[11]) maps applications onto regular NoC
// topologies; the case for custom synthesis is that application-specific
// topologies beat meshes on power and latency for heterogeneous SoC traffic.
// This module builds that baseline with the same component models and the
// same NocTopology representation, so metrics, the simulator and the
// exporters apply unchanged and the comparison is apples-to-apples:
//
//  * switches on an R x C grid spread over the chip (R*C >= cores, near
//    square), one core per switch, all in one clock/voltage domain;
//  * core-to-slot mapping minimizes bandwidth-weighted hop distance
//    (greedy: heaviest-traffic core at the centre, then best-free-slot);
//  * XY dimension-order routing (deadlock-free by construction);
//  * every mesh link is materialized (the regular fabric is laid out
//    whether used or not — that is the point of the comparison).
//
// The baseline ignores voltage islands: it is the shutdown-oblivious
// regular fabric a 2009-era flow would have instantiated.
#pragma once

#include "vinoc/core/topology.hpp"
#include "vinoc/models/technology.hpp"
#include "vinoc/soc/soc_spec.hpp"

namespace vinoc::core {

struct MeshOptions {
  models::Technology tech = models::Technology::cmos65nm();
  int link_width_bits = 32;
  /// Chip dimensions to spread the grid over [mm]; <= 0 derives a square
  /// die from the total core area with 20% whitespace.
  double chip_w_mm = 0.0;
  double chip_h_mm = 0.0;
};

struct MeshResult {
  bool ok = false;
  std::string failure_reason;
  int rows = 0;
  int cols = 0;
  NocTopology topology;
  Metrics metrics;
  /// Peak link demand / capacity over all mesh links; > 1 means the mesh
  /// cannot actually carry the traffic at this width/frequency.
  double max_link_utilization = 0.0;
};

/// Builds the mesh, maps cores, routes all flows XY, and evaluates it with
/// the same compute_metrics() as the synthesized topologies. `spec` is used
/// as-is; pass the 1-island variant for a fair shutdown-oblivious baseline.
MeshResult synthesize_mesh_baseline(const soc::SocSpec& spec,
                                    const MeshOptions& options = {});

}  // namespace vinoc::core

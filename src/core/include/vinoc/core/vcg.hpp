// VI Communication Graph (the paper's Definition 1).
//
// VCG(V, E, isl): one vertex per core of island `isl`; a directed edge per
// traffic flow between two cores of the island. The edge weight combines
// bandwidth and latency tightness:
//   h_ij = alpha * bw_ij / max_bw + (1 - alpha) * min_lat / lat_ij
// where max_bw is the largest flow bandwidth over ALL flows of the design
// and min_lat the tightest latency constraint over ALL flows, so weights are
// comparable across islands. Min-cut partitioning the VCG therefore keeps
// heavy and latency-critical communicators on the same switch.
#pragma once

#include "vinoc/graph/digraph.hpp"
#include "vinoc/soc/soc_spec.hpp"

namespace vinoc::core {

struct VcgScaling {
  double max_bw_bits_per_s = 0.0;
  double min_lat_cycles = 0.0;
};

/// Extremes over all flows of the design (Definition 1's max_bw / min_lat).
[[nodiscard]] VcgScaling vcg_scaling(const soc::SocSpec& spec);

/// Builds VCG(V, E, isl). Node i corresponds to
/// spec.cores_in_island(isl)[i] and carries the core's name; Edge::user
/// holds the flow index. `alpha` in [0,1] weighs bandwidth vs. latency.
[[nodiscard]] graph::Digraph build_vcg(const soc::SocSpec& spec,
                                       soc::IslandId island, double alpha,
                                       const VcgScaling& scaling);

/// Convenience overload computing the scaling internally.
[[nodiscard]] graph::Digraph build_vcg(const soc::SocSpec& spec,
                                       soc::IslandId island, double alpha);

}  // namespace vinoc::core

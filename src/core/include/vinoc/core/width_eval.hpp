// Sweep-structured candidate evaluation: share width-invariant work across
// the width sweep (the tentpole of the two-phase evaluation pipeline).
//
// Algorithm 1's structural decisions — min-cut partitions, switch
// placement, shutdown-safe admissibility — do not depend on the link width;
// only the cost models and capacity checks do. For widths whose DERIVED
// island parameters share the same structural profile (max switch size and
// minimum switch count per island; frequencies may differ), this module
// evaluates one candidate for ALL of them at once:
//
//   1. STRUCTURE: the leader width routes the candidate while every other
//      width runs as a verification LANE in the router's width lockstep
//      (see router.hpp WidthLane): each routing decision is re-derived from
//      the lane's width/frequency tables with the lane's exact solo
//      arithmetic. A lane that survives to the end is PROVEN to produce the
//      identical compacted topology and flow routes.
//   2. RE-COST: each surviving width materialises its CandidateOutcome from
//      the shared structure — topology copy with its own frequencies,
//      per-width metrics, and an exact replay of the per-width pruning
//      bound trajectory — at O(topology + flows) instead of a Dijkstra per
//      flow.
//   3. FALLBACK: widths whose routing outcome IS width-dependent (a
//      capacity check, port limit, wire-timing cap or cost comparison that
//      resolves differently — detected soundly per flow by the router's
//      path-level route-equivalence certificate, never guessed; harmless
//      near-tie trace flips are certified and keep sharing) drop out of
//      lockstep. Lanes that diverged at the SAME decision with identical
//      snapshots form a COHORT: one of them leads a resumed lockstep over
//      the shared tail (resume_route_flows_multi) and the others verify it
//      lane-style, so even diverged widths share their tails; only a lane
//      with a unique divergence point (or one that diverges again inside
//      its cohort) re-routes its tail solo from its snapshot (all earlier
//      flows are proven identical — see resume_route_flows).
//
// Results are bit-identical to evaluate_candidate() at every width; the
// merge stage (merge_candidate_outcomes) reconciles pruning exactly as it
// does for concurrent solo evaluation.
#pragma once

#include <vector>

#include "vinoc/core/candidates.hpp"

namespace vinoc::core {

/// One width's derived inputs within a structural class. All slices of one
/// MultiWidthContext must agree on every width-invariant field of
/// island_params (core_count, max_sw_size, min_switches) — group widths
/// with width_class_key() before building slices.
struct WidthSlice {
  SynthesisOptions options;  ///< base options with link_width_bits set
  std::vector<IslandNocParams> island_params;
  IslandNocParams intermediate_params;
};

/// Shared, width-invariant inputs of one candidate evaluation across a
/// width class. All referenced objects are owned by the caller and must
/// outlive the evaluation calls; they are never mutated here.
struct MultiWidthContext {
  const soc::SocSpec* spec = nullptr;
  const floorplan::Floorplan* floorplan = nullptr;
  const PartitionTable* partitions = nullptr;
  const std::vector<double>* core_traffic = nullptr;
  const std::vector<std::size_t>* flow_order = nullptr;
  /// Spec-only floor of the power bound (compute_ni_dynamic_base_w).
  double ni_dynamic_base_w = 0.0;
  std::vector<WidthSlice> slices;
};

/// How one (candidate, width) result was obtained (see WidthEvalCounters::
/// slice_class).
enum class ShareClass : unsigned char {
  kLeader = 0,     ///< routed the structure itself (group leader, or solo)
  kShared = 1,     ///< lockstep survivor, trace identical to the leader's
  kCertified = 2,  ///< lockstep survivor via >= 1 path certificate
  kCohort = 3,     ///< diverged; tail resumed in a cohort lockstep
  kSolo = 4,       ///< diverged; tail resumed solo
};

/// Observability counters of one evaluate_candidate_widths call (summed by
/// the sweep into WidthSetStats).
struct WidthEvalCounters {
  /// (candidate, width) results materialised from a shared structure
  /// (lockstep survivors other than the group leader, certificate-accepted
  /// ones included).
  int shared = 0;
  /// (candidate, width) results whose routing outcome was width-dependent
  /// (the lockstep diverged and a certificate rejected the flow); their
  /// tails were resumed in a cohort or solo.
  int fallback = 0;
  /// Lockstep survivors that needed >= 1 accepted path certificate — their
  /// traces differ from the leader's in near-tie flips only (subset of
  /// `shared`).
  int certified = 0;
  /// Flow-level certificate acceptances across every lane, cohort lanes
  /// included.
  int certificate_accepts = 0;
  /// Diverged (candidate, width) results RESOLVED by a cohort lockstep —
  /// the cohort leader plus members that stayed locked to its tail (subset
  /// of `fallback`; a lane that diverges again inside a cohort is counted
  /// by whatever finally resolves it) — and the number of cohorts formed.
  int cohort_lanes = 0;
  int cohort_groups = 0;
  /// Per-slice classification, parallel to MultiWidthContext::slices;
  /// filled whenever counters are supplied.
  std::vector<ShareClass> slice_class;
};

/// Structural profile of one width: widths with equal keys can share
/// candidate enumeration, partitions and — via the lockstep — routed
/// structures. Frequencies are deliberately excluded (they are verified
/// per decision, not required equal); infeasible widths get an empty key
/// and must not be grouped.
[[nodiscard]] std::vector<int> width_class_key(
    const std::vector<IslandNocParams>& island_params);

/// Evaluates `cand` for EVERY slice of `ctx` (see file header). Returns one
/// outcome per slice, each bit-identical to what evaluate_candidate() would
/// produce at that slice's width under sequential-merge semantics: shared
/// results are returned as kRouted/rejections with exact recorded bound
/// checkpoints (never kPruned), so merge_candidate_outcomes reconstructs
/// the sequential pruning decisions. `fronts` (optional, parallel to
/// slices, entries may be null) supplies per-width Pareto-bound snapshots:
/// a candidate whose pre-routing floor is dominated at EVERY width is
/// abandoned before routing, and solo fallback evaluations prune against
/// their width's snapshot.
///
/// `delta_record` / `delta` opt the SINGLE-SLICE path into the candidate-
/// level delta evaluator (see evaluate_candidate): the sweep's solo
/// schedule records the group reference per (class, width) and replays it
/// for adjacent group members. Both are ignored for multi-slice calls —
/// the lockstep already shares whole routed structures across widths, and
/// per-lane replay certificates per applied flow would cost more than the
/// lockstep's relaxation sharing.
[[nodiscard]] std::vector<CandidateOutcome> evaluate_candidate_widths(
    const MultiWidthContext& ctx, const CandidateConfig& cand,
    EvalScratch* scratch = nullptr,
    const std::vector<const ParetoBound*>* fronts = nullptr,
    WidthEvalCounters* counters = nullptr,
    DeltaReference* delta_record = nullptr, DeltaRouteState* delta = nullptr);

}  // namespace vinoc::core

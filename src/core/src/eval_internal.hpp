// Internal helpers of the candidate-evaluation stage, shared by the solo
// path (candidates.cpp: evaluate_candidate) and the sweep-structured
// multi-width path (width_eval.cpp: evaluate_candidate_widths). NOT part of
// the public API — intra-module include only.
//
// Everything here is deterministic and, unless stated otherwise, width- and
// frequency-invariant: the multi-width evaluator relies on these helpers
// producing byte-for-byte the values the solo evaluator would produce at
// any width of a structural class (see vinoc/core/width_eval.hpp).
#pragma once

#include <vector>

#include "vinoc/core/candidates.hpp"
#include "vinoc/core/vcg.hpp"

namespace vinoc::core::detail {

/// Min-cut partition of one island's VCG into `switch_count` blocks (empty
/// blocks dropped). Depends on the spec, alpha/seed, the VCG scaling and
/// `max_sw_size` — NOT on the link width or island frequency — so one
/// result serves every width whose island has the same max switch size
/// (the cross-width partition cache keys on exactly these inputs).
IslandPartition partition_island_mincut(const soc::SocSpec& spec,
                                        const SynthesisOptions& opts,
                                        const VcgScaling& scaling,
                                        soc::IslandId island, int switch_count,
                                        int max_sw_size);

/// Builds the switch set for one configuration: one switch per partition
/// block at the traffic-weighted centroid of its cores, plus `k_int`
/// intermediate switches around the chip centre. Width-invariant except the
/// per-switch frequency fields, which are taken from ctx's island params.
void build_switches(NocTopology& topo, const EvalContext& ctx,
                    const std::vector<const IslandPartition*>& parts, int k_int,
                    EvalScratch* scratch);

/// Drops intermediate switches that ended up with no links and remaps all
/// indices in place. Returns the number of intermediate switches kept.
int compact_unused_intermediate(NocTopology& topo);

/// Structural design signature for order-dependent deduplication.
std::vector<int> design_signature(const NocTopology& topo);

/// Moves each intermediate switch to the traffic-weighted centroid of its
/// link partners and refreshes wire lengths.
void refine_intermediate_positions(NocTopology& topo, const floorplan::Floorplan& fp,
                                   const soc::SocSpec& spec, EvalScratch* scratch);

/// Width-invariant parts of the pre-routing Pareto bound (see prune.hpp):
/// the NI + NI-wire power prefix and the per-flow latency floors. The
/// remaining term — the per-switch dynamic-power floor — depends on the
/// island frequencies and is added per width by base_power_with_floor().
struct BaseBoundParts {
  double power_prefix_w = 0.0;         ///< ni_dynamic_base + NI-wire terms
  double latency_sum_lb_cycles = 0.0;  ///< Σ min_flow_latency
};

/// Fills min_flow_latency / switch_bw_floor / switch_ebit_floor (indexed
/// like topo.switches) and returns the width-invariant bound parts. The
/// accumulation order matches the solo evaluator's compute_base_bound
/// exactly, so base_power_with_floor(parts, ...) reproduces its power bound
/// bit-for-bit.
BaseBoundParts compute_base_bound_parts(const soc::SocSpec& spec,
                                        const NocTopology& topo,
                                        const models::Technology& tech,
                                        double ni_dynamic_base_w,
                                        const std::vector<double>& core_traffic,
                                        std::vector<double>& min_flow_latency,
                                        std::vector<double>& switch_bw_floor,
                                        std::vector<double>& switch_ebit_floor);

/// Completes the pre-routing power bound at a specific width's frequencies:
/// prefix + Σ per-switch dynamic-power floor in switch order. `freq_of`
/// gives each switch's frequency at the target width (pass the topology's
/// own frequencies to reproduce the solo bound).
double base_power_with_floor(const BaseBoundParts& parts,
                             const NocTopology& topo,
                             const models::Technology& tech,
                             const std::vector<double>& switch_bw_floor,
                             const std::vector<double>& freq_of);

}  // namespace vinoc::core::detail

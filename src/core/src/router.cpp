#include "vinoc/core/router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <queue>

namespace vinoc::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

soc::IslandId island_of_switch(const NocTopology& topo, int sw) {
  return topo.switches[static_cast<std::size_t>(sw)].island;
}

double switch_freq(const NocTopology& topo, int sw) {
  return topo.switches[static_cast<std::size_t>(sw)].freq_hz;
}

}  // namespace

bool link_admissible(soc::IslandId a_isl, soc::IslandId b_isl,
                     soc::IslandId src_isl, soc::IslandId dst_isl) {
  if (src_isl == dst_isl) {
    // Intra-island flow: never leaves its island.
    return a_isl == src_isl && b_isl == src_isl;
  }
  if (a_isl == b_isl) {
    // Intra-island hop inside the source island, the destination island or
    // the intermediate NoC VI.
    return a_isl == src_isl || a_isl == dst_isl || a_isl == kIntermediateIsland;
  }
  // Cross-island hop: direct source->destination, or via the intermediate.
  if (a_isl == src_isl && b_isl == dst_isl) return true;
  if (a_isl == src_isl && b_isl == kIntermediateIsland) return true;
  if (a_isl == kIntermediateIsland && b_isl == dst_isl) return true;
  return false;
}

namespace {

/// Mutable routing state over a topology under construction.
class Router {
 public:
  Router(NocTopology& topo, const soc::SocSpec& spec, const RouterOptions& opts)
      : topo_(topo), spec_(spec), opts_(opts),
        sw_model_(opts.tech), link_model_(opts.tech), fifo_model_(opts.tech) {
    const std::size_t n_sw = topo_.switches.size();
    ports_in_.resize(n_sw);
    ports_out_.resize(n_sw);
    for (std::size_t s = 0; s < n_sw; ++s) {
      ports_in_[s] = static_cast<int>(topo_.switches[s].cores.size());
      ports_out_[s] = ports_in_[s];
    }
    // Power normalizer: opening a "typical" link (quarter-chip wire at the
    // design's peak flow bandwidth, with a FIFO).
    double max_bw = 0.0;
    double max_span = 0.0;
    for (const soc::Flow& f : spec_.flows) {
      max_bw = std::max(max_bw, f.bandwidth_bits_per_s);
    }
    for (const SwitchInst& s : topo_.switches) {
      max_span = std::max({max_span, s.pos.x_mm, s.pos.y_mm});
    }
    const double ref_len = std::max(0.5, max_span / 2.0);
    p_norm_ = link_model_.dynamic_power_w(ref_len, std::max(max_bw, 1.0)) +
              fifo_model_.dynamic_power_w(std::max(max_bw, 1.0));
    if (p_norm_ <= 0.0) p_norm_ = 1e-3;
  }

  RouteOutcome run() {
    topo_.routes.assign(spec_.flows.size(), FlowRoute{});

    // Bandwidth-descending flow order (step 15: "Choose flows in bandwidth
    // order"); ties broken by index for determinism.
    std::vector<std::size_t> order(spec_.flows.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
      return spec_.flows[a].bandwidth_bits_per_s > spec_.flows[b].bandwidth_bits_per_s;
    });

    RouteOutcome outcome;
    for (const std::size_t f : order) {
      if (!route_flow(f, outcome)) return outcome;
      ++outcome.flows_routed;
    }
    outcome.success = true;
    return outcome;
  }

 private:
  struct EdgeChoice {
    int link_id = -1;  ///< -1 = would open a new link
    double cost = kInf;
    double latency_cycles = 0.0;
  };

  bool crossing(int a, int b) const {
    return island_of_switch(topo_, a) != island_of_switch(topo_, b);
  }

  double link_capacity(int a, int b) const {
    const double f = std::min(switch_freq(topo_, a), switch_freq(topo_, b));
    return static_cast<double>(opts_.link_width_bits) * f;
  }

  double hop_length_mm(int a, int b) const {
    return floorplan::manhattan_mm(topo_.switches[static_cast<std::size_t>(a)].pos,
                                   topo_.switches[static_cast<std::size_t>(b)].pos);
  }

  double hop_latency_cycles(int a, int b) const {
    const double link_cycles =
        crossing(a, b) ? static_cast<double>(opts_.tech.fifo_latency_cycles) : 1.0;
    return link_cycles + opts_.tech.sw_pipeline_cycles;
  }

  /// Marginal power of pushing `bw` over the hop a->b, plus (for new links)
  /// the static cost of opening it.
  double hop_power_w(int a, int b, double bw, bool opening) const {
    const double len = hop_length_mm(a, b);
    double p = link_model_.dynamic_power_w(len, bw);
    // Crossbar traversal energy in the downstream switch.
    const int ports_b = std::max(ports_in_[static_cast<std::size_t>(b)],
                                 ports_out_[static_cast<std::size_t>(b)]);
    p += sw_model_.dynamic_power_w(ports_b, ports_b, 0.0, bw);
    if (crossing(a, b)) p += fifo_model_.dynamic_power_w(bw);
    if (opening) {
      // New ports clock on both sides; wires and (if crossing) a FIFO leak.
      p += opts_.tech.sw_idle_power_per_port_w_per_hz *
           (switch_freq(topo_, a) + switch_freq(topo_, b));
      p += link_model_.leakage_w(len, opts_.link_width_bits);
      if (crossing(a, b)) p += fifo_model_.leakage_w();
    }
    return p;
  }

  /// Best admissible way to go a->b for this flow, or cost = +inf.
  EdgeChoice edge_choice(int a, int b, const soc::Flow& flow) const {
    EdgeChoice choice;
    const soc::IslandId src_isl =
        spec_.cores[static_cast<std::size_t>(flow.src)].island;
    const soc::IslandId dst_isl =
        spec_.cores[static_cast<std::size_t>(flow.dst)].island;
    const soc::IslandId a_isl = island_of_switch(topo_, a);
    const soc::IslandId b_isl = island_of_switch(topo_, b);
    if (!link_admissible(a_isl, b_isl, src_isl, dst_isl)) {
      return choice;
    }
    if (opts_.forbid_direct_cross && a_isl != b_isl &&
        a_isl != kIntermediateIsland && b_isl != kIntermediateIsland) {
      return choice;
    }
    choice.latency_cycles = hop_latency_cycles(a, b);
    const double lat_term = choice.latency_cycles / flow.max_latency_cycles;
    const double bw = flow.bandwidth_bits_per_s;

    // Reusing an existing link is preferred when it has residual capacity.
    const auto it = link_index_.find({a, b});
    if (it != link_index_.end()) {
      const TopLink& l = topo_.links[static_cast<std::size_t>(it->second)];
      if (l.carried_bw_bits_per_s + bw <= link_capacity(a, b) + 1e-6) {
        const double p = hop_power_w(a, b, bw, /*opening=*/false);
        choice.link_id = it->second;
        choice.cost = opts_.alpha_power * p / p_norm_ +
                      (1.0 - opts_.alpha_power) * lat_term;
        return choice;
      }
      // Saturated: fall through and consider opening a parallel link.
    }

    // Opening a new link requires a free out port on a and in port on b.
    const auto as = static_cast<std::size_t>(a);
    const auto bs = static_cast<std::size_t>(b);
    if (ports_out_[as] + 1 > opts_.max_ports[as]) return choice;
    if (ports_in_[bs] + 1 > opts_.max_ports[bs]) return choice;
    if (bw > link_capacity(a, b) + 1e-6) return choice;
    if (opts_.enforce_wire_timing && !crossing(a, b)) {
      const double max_len =
          link_model_.max_unpipelined_length_mm(switch_freq(topo_, a));
      if (hop_length_mm(a, b) > max_len) return choice;
    }
    const double p = hop_power_w(a, b, bw, /*opening=*/true);
    choice.link_id = -1;
    choice.cost =
        opts_.alpha_power * p / p_norm_ + (1.0 - opts_.alpha_power) * lat_term;
    return choice;
  }

  bool route_flow(std::size_t flow_idx, RouteOutcome& outcome) {
    const soc::Flow& flow = spec_.flows[flow_idx];
    const int s_sw = topo_.switch_of_core[static_cast<std::size_t>(flow.src)];
    const int d_sw = topo_.switch_of_core[static_cast<std::size_t>(flow.dst)];
    FlowRoute& route = topo_.routes[flow_idx];
    route.src_switch = s_sw;
    route.dst_switch = d_sw;
    if (s_sw == d_sw) {
      route.latency_cycles = route_latency_cycles(topo_, route, opts_.tech);
      return true;
    }

    // Dijkstra over switches; the switch count is small (tens), so the
    // dense O(S^2) scan per extraction is fine and allocation-free.
    const std::size_t n = topo_.switches.size();
    std::vector<double> dist(n, kInf);
    std::vector<int> pred(n, -1);
    std::vector<EdgeChoice> pred_choice(n);
    std::vector<bool> done(n, false);
    dist[static_cast<std::size_t>(s_sw)] = 0.0;
    for (std::size_t iter = 0; iter < n; ++iter) {
      int u = -1;
      double best = kInf;
      for (std::size_t v = 0; v < n; ++v) {
        if (!done[v] && dist[v] < best) {
          best = dist[v];
          u = static_cast<int>(v);
        }
      }
      if (u < 0) break;
      done[static_cast<std::size_t>(u)] = true;
      if (u == d_sw) break;
      for (std::size_t v = 0; v < n; ++v) {
        if (done[v] || static_cast<int>(v) == u) continue;
        const EdgeChoice ec = edge_choice(u, static_cast<int>(v), flow);
        if (!std::isfinite(ec.cost)) continue;
        if (dist[static_cast<std::size_t>(u)] + ec.cost < dist[v]) {
          dist[v] = dist[static_cast<std::size_t>(u)] + ec.cost;
          pred[v] = u;
          pred_choice[v] = ec;
        }
      }
    }
    if (!std::isfinite(dist[static_cast<std::size_t>(d_sw)])) {
      outcome.failure_reason =
          "no admissible path for flow '" + flow.label + "'";
      return false;
    }

    // Materialize the path, opening links as needed.
    std::vector<int> rev_nodes;
    for (int v = d_sw; v != s_sw; v = pred[static_cast<std::size_t>(v)]) {
      rev_nodes.push_back(v);
    }
    std::reverse(rev_nodes.begin(), rev_nodes.end());
    int prev = s_sw;
    for (const int v : rev_nodes) {
      // Re-evaluate: an earlier hop of this same path may have opened a link
      // or consumed ports, but hops of one shortest path touch distinct
      // switches, so the cached choice stays valid; still, resolve by key.
      int link_id = pred_choice[static_cast<std::size_t>(v)].link_id;
      if (link_id < 0) {
        link_id = open_link(prev, v);
      }
      TopLink& l = topo_.links[static_cast<std::size_t>(link_id)];
      l.carried_bw_bits_per_s += flow.bandwidth_bits_per_s;
      l.flows.push_back(static_cast<int>(flow_idx));
      route.links.push_back(link_id);
      prev = v;
    }
    route.crossings = 0;
    for (const int l : route.links) {
      if (topo_.links[static_cast<std::size_t>(l)].crosses_island) ++route.crossings;
    }
    route.latency_cycles = route_latency_cycles(topo_, route, opts_.tech);
    if (route.latency_cycles > flow.max_latency_cycles + 1e-9) {
      outcome.failure_reason = "latency violated for flow '" + flow.label +
                               "' (" + std::to_string(route.latency_cycles) +
                               " > " + std::to_string(flow.max_latency_cycles) + ")";
      return false;
    }
    return true;
  }

  int open_link(int a, int b) {
    TopLink l;
    l.src_switch = a;
    l.dst_switch = b;
    l.crosses_island = crossing(a, b);
    l.length_mm = hop_length_mm(a, b);
    const int id = static_cast<int>(topo_.links.size());
    topo_.links.push_back(std::move(l));
    link_index_[{a, b}] = id;
    ++ports_out_[static_cast<std::size_t>(a)];
    ++ports_in_[static_cast<std::size_t>(b)];
    return id;
  }

  NocTopology& topo_;
  const soc::SocSpec& spec_;
  const RouterOptions& opts_;
  models::SwitchModel sw_model_;
  models::LinkModel link_model_;
  models::BisyncFifoModel fifo_model_;
  std::vector<int> ports_in_;
  std::vector<int> ports_out_;
  std::map<std::pair<int, int>, int> link_index_;
  double p_norm_ = 1.0;
};

}  // namespace

RouteOutcome route_all_flows(NocTopology& topo, const soc::SocSpec& spec,
                             const RouterOptions& options) {
  if (options.max_ports.size() != topo.switches.size()) {
    RouteOutcome out;
    out.failure_reason = "RouterOptions::max_ports size mismatch";
    return out;
  }
  const NocTopology clean = topo;  // pristine copy for the fallback pass
  RouteOutcome first;
  {
    Router router(topo, spec, options);
    first = router.run();
    if (first.success || options.forbid_direct_cross) return first;
  }
  // Greedy pass stranded a flow. If an intermediate switch exists, retry
  // with all cross-island traffic concentrated through the NoC VI (far
  // fewer ports consumed on the island switches).
  bool has_intermediate = false;
  for (const SwitchInst& s : clean.switches) {
    if (s.island == kIntermediateIsland) has_intermediate = true;
  }
  if (!has_intermediate) {
    topo = clean;  // leave a consistent (unrouted) topology behind
    return first;
  }
  topo = clean;
  RouterOptions retry = options;
  retry.forbid_direct_cross = true;
  Router router(topo, spec, retry);
  RouteOutcome second = router.run();
  if (!second.success) {
    // Report the greedy pass's diagnosis; it is usually more informative.
    second.failure_reason = first.failure_reason;
  }
  return second;
}

}  // namespace vinoc::core

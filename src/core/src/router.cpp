#include "vinoc/core/router.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>

#include "vinoc/core/prune.hpp"
#include "vinoc/core/simd.hpp"
#include "vinoc/obs/trace.hpp"

// Load-bearing inlining hint for the relaxation body (see route_flow): a
// call per surviving target costs ~8% of the evaluation hot path. Non-GNU
// compilers fall back to the optimizer's judgement.
#if defined(__GNUC__) || defined(__clang__)
#define VINOC_ALWAYS_INLINE __attribute__((always_inline))
#else
#define VINOC_ALWAYS_INLINE
#endif

namespace vinoc::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Runtime switch for the vectorized relaxation filter; read once per
/// Router construction (never mid-flow). The scalar and vector paths are
/// bit-identical (see simd.hpp), so this is purely a test/verification
/// knob.
std::atomic<bool> g_router_simd{true};

/// Runtime switch forcing the delta evaluator to verify every replay with
/// the flow's own solo Dijkstra (see set_delta_cert_forced); read once per
/// Router construction, like the SIMD toggle.
std::atomic<bool> g_delta_cert_forced{false};

soc::IslandId island_of_switch(const NocTopology& topo, int sw) {
  return topo.switches[static_cast<std::size_t>(sw)].island;
}

double switch_freq(const NocTopology& topo, int sw) {
  return topo.switches[static_cast<std::size_t>(sw)].freq_hz;
}

#if defined(VINOC_SIMD_VECTOR_EXT)
/// 4-wide evaluation of the relaxation filter over consecutive targets
/// v..v+3 of one dense run: bit i of the result is set when target i
/// SURVIVES (its relaxation body must run). Each lane computes exactly the
/// scalar `lead_skip` expression — the latency-part threshold, and the
/// opening-floor threshold gated on "no reusable link" — with per-lane IEEE
/// adds, so the mask equals four scalar evaluations bit-for-bit.
inline unsigned relax_survivors4(const double* dist, const double* floors,
                                 const int* links, double lat_thresh,
                                 double dist_u, double latpart) {
  const simd::F64x4 d = simd::load4(dist);
  unsigned skip = simd::ge_mask(simd::splat4(lat_thresh), d);
  const simd::F64x4 open_thresh =
      simd::splat4(dist_u) + (simd::load4(floors) + simd::splat4(latpart));
  skip |= simd::ge_mask(open_thresh, d) & simd::lt0_mask(simd::load4i(links));
  return ~skip & 0xFu;
}
#endif

}  // namespace

bool set_router_simd_enabled(bool enabled) {
  return g_router_simd.exchange(enabled, std::memory_order_relaxed);
}

bool router_simd_enabled() {
  return g_router_simd.load(std::memory_order_relaxed);
}

bool set_delta_cert_forced(bool enabled) {
  return g_delta_cert_forced.exchange(enabled, std::memory_order_relaxed);
}

bool delta_cert_forced() {
  return g_delta_cert_forced.load(std::memory_order_relaxed);
}

std::vector<std::size_t> bandwidth_descending_order(const soc::SocSpec& spec) {
  std::vector<std::size_t> order(spec.flows.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&spec](std::size_t a, std::size_t b) {
                     return spec.flows[a].bandwidth_bits_per_s >
                            spec.flows[b].bandwidth_bits_per_s;
                   });
  return order;
}

bool link_admissible(soc::IslandId a_isl, soc::IslandId b_isl,
                     soc::IslandId src_isl, soc::IslandId dst_isl) {
  if (src_isl == dst_isl) {
    // Intra-island flow: never leaves its island.
    return a_isl == src_isl && b_isl == src_isl;
  }
  if (a_isl == b_isl) {
    // Intra-island hop inside the source island, the destination island or
    // the intermediate NoC VI.
    return a_isl == src_isl || a_isl == dst_isl || a_isl == kIntermediateIsland;
  }
  // Cross-island hop: direct source->destination, or via the intermediate.
  if (a_isl == src_isl && b_isl == dst_isl) return true;
  if (a_isl == src_isl && b_isl == kIntermediateIsland) return true;
  if (a_isl == kIntermediateIsland && b_isl == dst_isl) return true;
  return false;
}

namespace {

/// Mutable routing state over a topology under construction. All transient
/// buffers live in the caller-provided RouterScratch, reset per construction
/// (assign, never shrink) so a sweep reuses one arena across candidates.
///
/// The per-flow shortest-path search is a Dijkstra over the flow's
/// admissible switches with two bit-exact accelerations:
///  * EXTRACTION uses a lazy (dist, index) min-heap, which pops nodes in
///    exactly the order the dense lowest-dist-then-lowest-index scan would
///    select them (stale entries — a superseded dist or an already-done
///    node — are skipped; every undone finite node always has one fresh
///    entry whose key equals its current dist);
///  * a RELAXATION is skipped outright when even the latency part of the
///    edge cost cannot beat dist[v]: the power part is non-negative and
///    IEEE addition is monotone, so the skipped relaxation provably would
///    not have updated anything.
/// Both leave results bit-identical to the naive dense loop.
///
/// When `lanes` is non-empty the router additionally runs the WIDTH
/// LOCKSTEP of the sweep-structured evaluation (see router.hpp): every
/// routing decision the leader makes — extraction choice, relaxation
/// outcome, reuse-vs-open selection, capacity/port/wire admissibility — is
/// re-derived per lane from that lane's width/frequency tables with the
/// lane's exact solo arithmetic (lane costs reuse the width-invariant part
/// of the edge power and add their own opening surcharge in the solo
/// operation order). The first mismatching outcome marks the lane
/// diverged. Pruning bounds are never consulted in lockstep mode.
class Router {
 public:
  Router(NocTopology& topo, const soc::SocSpec& spec, const RouterOptions& opts,
         RouterScratch& scratch, const RouteBound* bound,
         std::vector<WidthLane>* lanes = nullptr, int pass_id = 1,
         bool resume_state = false, DeltaReference* rec_out = nullptr,
         DeltaRouteState* delta = nullptr)
      : topo_(topo), spec_(spec), opts_(opts), scratch_(scratch), bound_(bound),
        lanes_(lanes), rec_out_(rec_out), delta_(delta), sw_model_(opts.tech),
        link_model_(opts.tech), fifo_model_(opts.tech), pass_id_(pass_id) {
    const std::size_t n_sw = topo_.switches.size();
    n_ = n_sw;
    scratch_.ports_in.assign(n_sw, 0);
    scratch_.ports_out.assign(n_sw, 0);
    for (std::size_t s = 0; s < n_sw; ++s) {
      scratch_.ports_in[s] = static_cast<int>(topo_.switches[s].cores.size());
      scratch_.ports_out[s] = scratch_.ports_in[s];
    }
    scratch_.link_at.assign(n_sw * n_sw, -1);
    if (resume_state) {
      // Reconstruct the incremental routing state a from-scratch run would
      // hold after opening topo's links in order: port counters, the
      // latest-link lookup (a later parallel link overwrites the earlier
      // one, exactly like open_link did), crossbar-energy caches.
      for (std::size_t l = 0; l < topo_.links.size(); ++l) {
        const TopLink& link = topo_.links[l];
        ++scratch_.ports_out[static_cast<std::size_t>(link.src_switch)];
        ++scratch_.ports_in[static_cast<std::size_t>(link.dst_switch)];
        scratch_.link_at[static_cast<std::size_t>(link.src_switch) * n_sw +
                         static_cast<std::size_t>(link.dst_switch)] =
            static_cast<int>(l);
      }
    }
    // Power normalizer: opening a "typical" link (quarter-chip wire at the
    // design's peak flow bandwidth, with a FIFO).
    double max_bw = 0.0;
    double max_span = 0.0;
    for (const soc::Flow& f : spec_.flows) {
      max_bw = std::max(max_bw, f.bandwidth_bits_per_s);
    }
    for (const SwitchInst& s : topo_.switches) {
      max_span = std::max({max_span, s.pos.x_mm, s.pos.y_mm});
    }
    const double ref_len = std::max(0.5, max_span / 2.0);
    p_norm_ = link_model_.dynamic_power_w(ref_len, std::max(max_bw, 1.0)) +
              fifo_model_.dynamic_power_w(std::max(max_bw, 1.0));
    if (p_norm_ <= 0.0) p_norm_ = 1e-3;

    // The edge-cost inner loop runs millions of times per sweep; hoist the
    // model constants and the pure per-switch/per-pair geometry out of it.
    // Every cached expression replicates its model function's operation
    // order exactly (see noc_models.cpp), so costs — and therefore routing
    // decisions — are bit-identical to calling the models per edge.
    const models::Technology& tech = opts_.tech;
    link_dyn_c_ = tech.link_energy_pj_per_bit_mm * 1e-12;
    link_leak_c_ = tech.link_leakage_mw_per_wire_mm * 1e-3;
    fifo_dyn_c_ = tech.fifo_energy_pj_per_bit * 1e-12;
    fifo_leak_w_ = tech.fifo_leakage_mw * 1e-3;
    idle_w_per_hz_ = tech.sw_idle_power_per_port_w_per_hz;
    hop_lat_intra_ = 1.0 + tech.sw_pipeline_cycles;
    hop_lat_cross_ = static_cast<double>(tech.fifo_latency_cycles) +
                     tech.sw_pipeline_cycles;
    scratch_.max_wire_len.assign(n_sw, 0.0);
    if (opts_.enforce_wire_timing) {
      for (std::size_t s = 0; s < n_sw; ++s) {
        scratch_.max_wire_len[s] =
            link_model_.max_unpipelined_length_mm(topo_.switches[s].freq_hz);
      }
    }
    // Flat copies of the per-switch hot fields (SwitchInst drags its core
    // list through the cache otherwise), plus the per-switch crossbar
    // energy/bit at the CURRENT port count, kept in sync by open_link().
    scratch_.island_of.assign(n_sw, 0);
    scratch_.freq_of.assign(n_sw, 0.0);
    scratch_.ebit_of.assign(n_sw, 0.0);
    for (std::size_t s = 0; s < n_sw; ++s) {
      scratch_.island_of[s] = topo_.switches[s].island;
      scratch_.freq_of[s] = topo_.switches[s].freq_hz;
      refresh_ebit(static_cast<int>(s));
    }

    if (bound_ != nullptr && bound_->front != nullptr) {
      power_lb_ = bound_->base_power_lb_w;
      lat_sum_lb_ = bound_->base_latency_sum_cycles;
      fifo_w_per_bw_ = opts_.tech.fifo_energy_pj_per_bit * 1e-12;
      link_w_per_bw_mm_ = opts_.tech.link_energy_pj_per_bit_mm * 1e-12;
    }

    if (lanes_ != nullptr) {
      if (scratch_.lane_dist.size() < lanes_->size()) {
        scratch_.lane_dist.resize(lanes_->size());
        scratch_.lane_heap.resize(lanes_->size());
      }
    }

    // Per-island contiguous index ranges, so each flow's Dijkstra can visit
    // only its admissible switches (source island, destination island, the
    // intermediate VI) instead of the full switch set. Topologies from the
    // synthesis pipeline are always laid out islands-ascending with the
    // intermediates last; anything else (hand-built) falls back to the full
    // range, which is merely slower, never different — inadmissible nodes
    // can neither be relaxed nor extracted (their distance stays infinite).
    const std::size_t n_islands = spec.islands.size();
    island_begin_.assign(n_islands + 1, -1);
    island_end_.assign(n_islands + 1, -1);
    contiguous_ = true;
    for (std::size_t s = 0; s < n_sw; ++s) {
      const soc::IslandId isl = topo_.switches[s].island;
      const std::size_t slot =
          isl == kIntermediateIsland ? n_islands : static_cast<std::size_t>(isl);
      if (island_begin_[slot] < 0) {
        island_begin_[slot] = static_cast<int>(s);
        island_end_[slot] = static_cast<int>(s + 1);
      } else if (island_end_[slot] == static_cast<int>(s)) {
        island_end_[slot] = static_cast<int>(s + 1);
      } else {
        contiguous_ = false;  // island split across the array
        break;
      }
    }
    if (contiguous_) {
      // Ranges must also appear in ascending island order (intermediate
      // last) so the subset scan visits indices ascending, preserving the
      // lowest-index tie-break of the dense scan.
      int prev_end = 0;
      for (std::size_t slot = 0; slot <= n_islands && contiguous_; ++slot) {
        if (island_begin_[slot] < 0) continue;  // island without switches
        if (island_begin_[slot] < prev_end) contiguous_ = false;
        prev_end = island_end_[slot];
      }
    }

    use_simd_ = simd::compiled_vector() &&
                g_router_simd.load(std::memory_order_relaxed);

    // Arm delta replay only when the reference's power normalizer is
    // bit-equal to ours: p_norm is the single cross-candidate coupling of
    // intra-island routing decisions (everything else an intra Dijkstra
    // reads is island-local), so with equal normalizers an in-sync
    // island's decisions are input-identical to the reference's. Each pass
    // re-arms with a fresh taint vector (pass 2 restarts from a pristine
    // topology compared against the same pass-1 records).
    if (delta_ != nullptr) {
      delta_->pnorm_matched = delta_->ref != nullptr && delta_->ref->valid &&
                              delta_->ref->p_norm == p_norm_;
      delta_apply_ = delta_->pnorm_matched;
      if (delta_apply_) {
        delta_->island_tainted.assign(spec.islands.size(), 0);
        cert_forced_ = g_delta_cert_forced.load(std::memory_order_relaxed);
      }
    }

    build_floor_matrix();
  }

  [[nodiscard]] double p_norm() const { return p_norm_; }

  RouteOutcome run(std::size_t start_pos = 0) {
    if (start_pos == 0) {
      topo_.routes.assign(spec_.flows.size(), FlowRoute{});
    } else if (topo_.routes.size() != spec_.flows.size()) {
      topo_.routes.resize(spec_.flows.size());
    }

    // The order is a pure function of the spec, so sweep callers pass it
    // precomputed; direct callers fall back to sorting here.
    const std::vector<std::size_t>* order = opts_.flow_order;
    if (order == nullptr) {
      scratch_.flow_order = bandwidth_descending_order(spec_);
      order = &scratch_.flow_order;
    }

    const bool bounding = bound_ != nullptr && bound_->front != nullptr &&
                          bound_->min_flow_latency != nullptr &&
                          !spec_.flows.empty();
    const double inv_flows =
        spec_.flows.empty() ? 0.0 : 1.0 / static_cast<double>(spec_.flows.size());

    RouteOutcome outcome;
    outcome.flows_routed = static_cast<int>(start_pos);
    for (std::size_t pos = start_pos; pos < order->size(); ++pos) {
      const std::size_t f = (*order)[pos];
      order_pos_ = pos;
      const bool ok = delta_apply_ && pos < delta_->ref->records.size()
                          ? delta_route_flow(pos, f, outcome)
                          : route_flow(f, outcome);
      if (ok && rec_out_ != nullptr) {
        // Pure observation: the routed hop sequence, reconstructed from the
        // finished route (a link was opened by this flow iff the flow is
        // its first user).
        reconstruct_hops(f, rec_out_->records.emplace_back().hops);
      }
      if (!ok) return outcome;
      ++outcome.flows_routed;
      if (bounding) {
        // Replace this flow's minimum latency with its exact final latency
        // (routes never change after routing) — both bounds stay monotone
        // lower bounds on the finished design's metrics.
        lat_sum_lb_ += topo_.routes[f].latency_cycles -
                       (*bound_->min_flow_latency)[f];
        const double avg_lb = lat_sum_lb_ * inv_flows;
        if (bound_->front->dominated(power_lb_, avg_lb)) {
          outcome.pruned = true;
          outcome.bound_checked = true;
          outcome.pruned_power_lb_w = power_lb_;
          outcome.pruned_latency_lb_cycles = avg_lb;
          return outcome;
        }
      }
    }
    outcome.success = true;
    if (bounding) {
      // Expose the last-checkpoint bounds: the merge stage re-checks them
      // against the enumeration-ordered front to decide whether a
      // sequential run (with a possibly richer front than our snapshot)
      // would have pruned this candidate.
      outcome.bound_checked = true;
      outcome.pruned_power_lb_w = power_lb_;
      outcome.pruned_latency_lb_cycles = lat_sum_lb_ * inv_flows;
    }
    return outcome;
  }

 private:
  /// Result of choose_hop(): edge cost (kInf = inadmissible) and the
  /// chosen link (-1 = open a new one).
  struct HopChoice {
    double cost = kInf;
    int link = -1;
  };

  /// Reuse-vs-open selection for one admissible hop at ONE width — the
  /// single definition of the width-dependent routing decision that the
  /// leader, every lockstep lane and the certificate Dijkstra re-derive
  /// over their own width/frequency/port tables. Certificate soundness
  /// bit-depends on all three evaluating the identical expression chain
  /// (same operations, same IEEE order), so it is shared, never copied.
  /// `base_power` is the lazily computed width-invariant marginal power of
  /// the hop (wire + downstream crossbar + FIFO traversal).
  template <typename BasePowerFn>
  VINOC_ALWAYS_INLINE HopChoice choose_hop(
      double width_bits, double fu, double fv, int max_ports_u,
      int max_ports_v, double wire_cap_u, bool cross, double len,
      double latpart, double bw, int existing, std::size_t us, std::size_t vs,
      BasePowerFn&& base_power) {
    HopChoice choice;
    if (existing >= 0) {
      const TopLink& l = topo_.links[static_cast<std::size_t>(existing)];
      const double cap = width_bits * std::min(fu, fv);
      if (l.carried_bw_bits_per_s + bw <= cap + 1e-6) {
        choice.cost = opts_.alpha_power * base_power() / p_norm_ + latpart;
        choice.link = existing;
        return choice;
      }
      // Saturated: fall through and consider opening a parallel link.
    }
    // Opening needs a free out port on u and in port on v, enough
    // capacity, and (intra-island) a one-cycle wire.
    bool ok = scratch_.ports_out[us] + 1 <= max_ports_u &&
              scratch_.ports_in[vs] + 1 <= max_ports_v;
    if (ok) {
      const double cap = width_bits * std::min(fu, fv);
      ok = !(bw > cap + 1e-6);
    }
    if (ok && opts_.enforce_wire_timing && !cross) {
      ok = !(len > wire_cap_u);
    }
    if (ok) {
      // New ports clock on both sides; wires and (if crossing) a FIFO
      // leak. Same accumulation order as hop_power_w had.
      double p = base_power();
      p += idle_w_per_hz_ * (fu + fv);
      p += link_leak_c_ * len * width_bits;
      if (cross) p += fifo_leak_w_;
      choice.cost = opts_.alpha_power * p / p_norm_ + latpart;
      choice.link = -1;
    }
    return choice;
  }

  /// Marks a lane width-dependent and snapshots the shared state (the
  /// topology BEFORE the diverging flow — its links have not been
  /// materialised yet) so the lane's fallback re-routes only the tail.
  void diverge(WidthLane& lane) {
    lane.diverged = true;
    lane.resume_topo = topo_;
    lane.resume_order_pos = static_cast<int>(order_pos_);
    lane.resume_pass = pass_id_;
  }

  bool crossing(int a, int b) const {
    return scratch_.island_of[static_cast<std::size_t>(a)] !=
           scratch_.island_of[static_cast<std::size_t>(b)];
  }

  double hop_length_mm(int a, int b) const {
    return scratch_.geometry.hop_len[static_cast<std::size_t>(a) * n_ +
                                     static_cast<std::size_t>(b)];
  }

  /// Crossbar energy per bit of switch `s` at its CURRENT port count — the
  /// cached value always equals the expression the naive path evaluates per
  /// edge (refreshed whenever a port count changes).
  void refresh_ebit(int s) {
    const auto ss = static_cast<std::size_t>(s);
    const int ports = std::max(scratch_.ports_in[ss], scratch_.ports_out[ss]);
    scratch_.ebit_of[ss] = (opts_.tech.sw_energy_base_pj_per_bit +
                            opts_.tech.sw_energy_per_port_pj_per_bit * ports) *
                           1e-12;
  }

  /// Lazily builds (or returns) the admissible-hop CSR of one flow class.
  /// The class is width- and frequency-invariant, so it persists across both
  /// routing passes and, in lockstep mode, every lane (see RoutingGeometry).
  RoutingGeometry::FlowClass& flow_class(soc::IslandId src_isl,
                                         soc::IslandId dst_isl) {
    RoutingGeometry& g = scratch_.geometry;
    const std::size_t ni = g.n_islands;
    auto slot = [ni](soc::IslandId i) {
      return i == kIntermediateIsland ? ni : static_cast<std::size_t>(i);
    };
    RoutingGeometry::FlowClass& c =
        g.classes[slot(src_isl) * (ni + 1) + slot(dst_isl)];
    if (c.built) return c;
    c.built = true;
    // Member switches of this class, ascending (preserves the dense scan's
    // iteration order); non-members are never extracted (their distance
    // stays infinite). Members are grouped into maximal runs of index-
    // consecutive switches of one island, so each source switch's
    // admissible targets are a handful of dense ranges the relaxation loop
    // streams over.
    std::vector<int> members;
    if (contiguous_) {
      auto push_range = [this, &members](std::size_t s) {
        for (int i = island_begin_[s]; i < island_end_[s]; ++i) {
          members.push_back(i);
        }
      };
      if (src_isl == dst_isl) {
        push_range(slot(src_isl));
      } else {
        const auto lo = std::min(slot(src_isl), slot(dst_isl));
        const auto hi = std::max(slot(src_isl), slot(dst_isl));
        push_range(lo);
        push_range(hi);
        push_range(ni);  // intermediate VI switches sit at the end
      }
    } else {
      for (std::size_t s = 0; s < n_; ++s) members.push_back(static_cast<int>(s));
    }
    struct Segment {
      int lo, hi;
      soc::IslandId island;
    };
    std::vector<Segment> segments;
    for (std::size_t i = 0; i < members.size();) {
      const int lo = members[i];
      const auto isl = static_cast<soc::IslandId>(
          scratch_.island_of[static_cast<std::size_t>(lo)]);
      std::size_t j = i + 1;
      while (j < members.size() && members[j] == members[j - 1] + 1 &&
             static_cast<soc::IslandId>(scratch_.island_of[static_cast<std::size_t>(
                 members[j])]) == isl) {
        ++j;
      }
      segments.push_back({lo, members[j - 1] + 1, isl});
      i = j;
    }
    c.run_begin.assign(n_ + 1, 0);
    c.runs.clear();
    for (std::size_t u = 0; u < n_; ++u) {
      c.run_begin[u] = static_cast<int>(c.runs.size());
      const auto a_isl = static_cast<soc::IslandId>(scratch_.island_of[u]);
      bool u_member = false;
      for (const Segment& seg : segments) {
        if (static_cast<int>(u) >= seg.lo && static_cast<int>(u) < seg.hi) {
          u_member = true;
          break;
        }
      }
      if (!u_member) continue;
      for (const Segment& seg : segments) {
        if (!link_admissible(a_isl, seg.island, src_isl, dst_isl)) continue;
        RoutingGeometry::HopRun run;
        run.crossing = a_isl != seg.island ? 1 : 0;
        run.direct_cross = (a_isl != seg.island && a_isl != kIntermediateIsland &&
                            seg.island != kIntermediateIsland)
                               ? 1
                               : 0;
        // The source switch is split out of its own segment.
        if (static_cast<int>(u) >= seg.lo && static_cast<int>(u) < seg.hi) {
          if (seg.lo < static_cast<int>(u)) {
            run.lo = seg.lo;
            run.hi = static_cast<int>(u);
            c.runs.push_back(run);
          }
          if (static_cast<int>(u) + 1 < seg.hi) {
            run.lo = static_cast<int>(u) + 1;
            run.hi = seg.hi;
            c.runs.push_back(run);
          }
        } else {
          run.lo = seg.lo;
          run.hi = seg.hi;
          c.runs.push_back(run);
        }
      }
    }
    c.run_begin[n_] = static_cast<int>(c.runs.size());
    return c;
  }

  /// Per-pass lower bounds on the cost of OPENING a link on each switch
  /// pair. The opening cost accumulates the non-negative idle-port, wire-
  /// leakage and (crossing) FIFO-leakage terms, and every later operation
  /// in the cost chain (multiply by alpha_power, divide by p_norm, add the
  /// latency part) is monotone in IEEE arithmetic, so
  ///   open cost >= fl(alpha_power * p_floor / p_norm) =: floor(a, b).
  /// A relaxation that must open (no reusable link) is therefore skipped —
  /// bit-exactly — whenever dist_u + (floor + latpart) cannot beat dist[v],
  /// without computing the full cost (or its division). Built once per
  /// routing pass (it depends on this pass's width and frequencies).
  void build_floor_matrix() {
    floor_.assign(n_ * n_, 0.0);
    const double w = static_cast<double>(opts_.link_width_bits);
    const std::vector<double>& leak_len = scratch_.geometry.leak_len;
    for (std::size_t a = 0; a < n_; ++a) {
      const double fa = scratch_.freq_of[a];
      const int a_isl = scratch_.island_of[a];
      for (std::size_t b = 0; b < n_; ++b) {
        const double ti = idle_w_per_hz_ * (fa + scratch_.freq_of[b]);
        const double tl = leak_len[a * n_ + b] * w;
        const double p_floor = scratch_.island_of[b] != a_isl
                                   ? (ti + tl) + fifo_leak_w_
                                   : ti + tl;
        floor_[a * n_ + b] = opts_.alpha_power * p_floor / p_norm_;
      }
    }
  }

  bool route_flow(std::size_t flow_idx, RouteOutcome& outcome) {
    const soc::Flow& flow = spec_.flows[flow_idx];
    const int s_sw = topo_.switch_of_core[static_cast<std::size_t>(flow.src)];
    const int d_sw = topo_.switch_of_core[static_cast<std::size_t>(flow.dst)];
    FlowRoute& route = topo_.routes[flow_idx];
    route.src_switch = s_sw;
    route.dst_switch = d_sw;
    if (s_sw == d_sw) {
      route.latency_cycles = route_latency_cycles(topo_, route, opts_.tech);
      return true;
    }

    const std::size_t n = n_;
    const soc::IslandId src_isl =
        spec_.cores[static_cast<std::size_t>(flow.src)].island;
    const soc::IslandId dst_isl =
        spec_.cores[static_cast<std::size_t>(flow.dst)].island;
    // Width-invariant admissible-hop runs of this flow's island class (see
    // RoutingGeometry) — replaces the per-edge admissibility test.
    const RoutingGeometry::FlowClass& fclass = flow_class(src_isl, dst_isl);

    // Per-flow constants of the edge cost. lat_part_* is EXACTLY the second
    // addend of the cost formula below (same operations, same order), so it
    // doubles as the bit-exact early-skip threshold of a relaxation.
    const double bw = flow.bandwidth_bits_per_s;
    const double lat_part_intra =
        (1.0 - opts_.alpha_power) * (hop_lat_intra_ / flow.max_latency_cycles);
    const double lat_part_cross =
        (1.0 - opts_.alpha_power) * (hop_lat_cross_ / flow.max_latency_cycles);

    // Only dist needs a per-flow reset: pred/pred_link are read exclusively
    // for nodes the CURRENT flow updated (the path walk follows this flow's
    // tree), and done-ness is encoded in dist itself — an extracted node's
    // dist is clobbered to -inf, which both stales its heap entries and
    // trips every relaxation filter (anything finite >= -inf).
    scratch_.dist.assign(n, kInf);
    if (scratch_.pred.size() < n) {
      scratch_.pred.resize(n, -1);
      scratch_.pred_link.resize(n, -1);
    }
    std::vector<double>& dist = scratch_.dist;
    std::vector<int>& pred = scratch_.pred;
    std::vector<int>& pred_link = scratch_.pred_link;
    dist[static_cast<std::size_t>(s_sw)] = 0.0;
    auto heap_after = [](const std::pair<double, int>& a,
                         const std::pair<double, int>& b) {
      return a.first > b.first || (a.first == b.first && a.second > b.second);
    };
    std::vector<std::pair<double, int>>& heap = scratch_.heap;
    heap.clear();
    heap.emplace_back(0.0, s_sw);

    const std::size_t n_lanes = lanes_ != nullptr ? lanes_->size() : 0;
    if (lane_dist_u_.size() < n_lanes) lane_dist_u_.resize(n_lanes, 0.0);
    for (std::size_t k = 0; k < n_lanes; ++k) {
      WidthLane& lane = (*lanes_)[k];
      if (lane.diverged) continue;
      lane.pending = false;  // every flow starts back in per-decision lockstep
      scratch_.lane_dist[k].assign(n, kInf);
      scratch_.lane_dist[k][static_cast<std::size_t>(s_sw)] = 0.0;
      scratch_.lane_heap[k].clear();
      scratch_.lane_heap[k].emplace_back(0.0, s_sw);
    }

    const bool forbid = opts_.forbid_direct_cross;
    const double width0 = static_cast<double>(opts_.link_width_bits);
    while (true) {
      // Leader extraction: lazy-heap pop == dense-scan argmin (see class
      // comment).
      int u = -1;
      double dist_u = 0.0;
      while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), heap_after);
        const auto [du, cand] = heap.back();
        heap.pop_back();
        const auto cs = static_cast<std::size_t>(cand);
        if (du != dist[cs]) continue;  // stale entry (or node already done)
        u = cand;
        dist_u = du;
        break;
      }
      // Lane extractions must select the same node from their own heaps; a
      // lane whose solo run would extract a different node (or run dry /
      // keep going when the leader does not) leaves the per-decision
      // lockstep for THIS flow — the path-level certificate below decides
      // whether the mismatch was a harmless near-tie flip or a genuine
      // divergence. The popped key of a matching lane IS that lane's
      // dist_u, saved before clobbering.
      for (std::size_t k = 0; k < n_lanes; ++k) {
        WidthLane& lane = (*lanes_)[k];
        if (lane.diverged || lane.pending) continue;
        std::vector<std::pair<double, int>>& lheap = scratch_.lane_heap[k];
        std::vector<double>& ldist = scratch_.lane_dist[k];
        int uk = -1;
        while (!lheap.empty()) {
          std::pop_heap(lheap.begin(), lheap.end(), heap_after);
          const auto [dk, ck] = lheap.back();
          lheap.pop_back();
          const auto cs = static_cast<std::size_t>(ck);
          if (dk != ldist[cs]) continue;
          uk = ck;
          lane_dist_u_[k] = dk;
          break;
        }
        if (uk != u) lane.pending = true;
      }
      if (u < 0) break;
      const auto us = static_cast<std::size_t>(u);
      if (u == d_sw) break;
      dist[us] = -kInf;  // done: stales heap entries, trips relax filters
      bool lanes_active = false;
      for (std::size_t k = 0; k < n_lanes; ++k) {
        const WidthLane& lane = (*lanes_)[k];
        if (!lane.diverged && !lane.pending) {
          scratch_.lane_dist[k][us] = -kInf;
          lanes_active = true;
        }
      }

      const double freq_u = scratch_.freq_of[us];
      const double wire_cap_u =
          opts_.enforce_wire_timing ? scratch_.max_wire_len[us] : 0.0;
      const double* hop_row = &scratch_.geometry.hop_len[us * n_];
      const double* floor_row = &floor_[us * n_];
      const int* link_row = &scratch_.link_at[us * n_];
      const int run_end = fclass.run_begin[us + 1];
      for (int rr = fclass.run_begin[us]; rr < run_end; ++rr) {
        const RoutingGeometry::HopRun& run =
            fclass.runs[static_cast<std::size_t>(rr)];
        if (forbid && run.direct_cross != 0) continue;
        const bool cross = run.crossing != 0;
        const double latpart = cross ? lat_part_cross : lat_part_intra;
        const double lat_thresh = dist_u + latpart;
      // One definition of the per-target relaxation, shared by the scalar
      // loop (live lanes: the body must run even when the leader's filter
      // skipped, with the leader's choice pinned to "no update") and the
      // filtered solo loop below (only survivors reach it, lead_skip
      // false). Force-inlined: a call per surviving target costs ~8% of
      // the whole evaluation hot path (measured vs the pre-refactor loop).
      auto process_target = [&](int v, bool lead_skip) VINOC_ALWAYS_INLINE {
        const auto vs = static_cast<std::size_t>(v);
        const int existing = link_row[vs];
        const double len = hop_row[vs];
        // Width-invariant part of the marginal power (wire + downstream
        // crossbar + FIFO traversal), shared by the leader and every lane;
        // computed lazily in the exact operation order of the naive path.
        double p_base = -1.0;
        auto base_power = [&]() {
          if (p_base < 0.0) {
            double p = link_dyn_c_ * len * bw;
            p += scratch_.ebit_of[vs] * bw;
            if (cross) p += fifo_dyn_c_ * bw;
            p_base = p;
          }
          return p_base;
        };

        // Leader choice: reuse the existing link when it has residual
        // capacity, else try to open a new one (see choose_hop).
        double cost0 = kInf;
        int link0 = -1;
        if (!lead_skip) {
          const HopChoice hc = choose_hop(
              width0, freq_u, scratch_.freq_of[vs], opts_.max_ports[us],
              opts_.max_ports[vs], wire_cap_u, cross, len, latpart, bw,
              existing, us, vs, base_power);
          cost0 = hc.cost;
          link0 = hc.link;
        }
        const bool update0 = std::isfinite(cost0) && dist_u + cost0 < dist[vs];
        if (update0) {
          dist[vs] = dist_u + cost0;
          pred[vs] = u;
          pred_link[vs] = link0;
          heap.emplace_back(dist[vs], v);
          std::push_heap(heap.begin(), heap.end(), heap_after);
        }

        // Lanes: re-derive the same decision at each lane's width and
        // frequencies with the lane's exact solo arithmetic; any outcome
        // mismatch (update-or-not, or reuse-vs-open) drops the lane out of
        // the per-decision lockstep for this flow (the certificate decides
        // its fate once the leader's path is known).
        for (std::size_t k = 0; k < n_lanes; ++k) {
          WidthLane& lane = (*lanes_)[k];
          if (lane.diverged || lane.pending) continue;
          std::vector<double>& ldist = scratch_.lane_dist[k];
          const double ldist_u = lane_dist_u_[k];
          double costk = kInf;
          int linkk = -1;
          if (!(ldist_u + latpart >= ldist[vs])) {
            const HopChoice hc = choose_hop(
                static_cast<double>(lane.width_bits), lane.switch_freq[us],
                lane.switch_freq[vs], lane.max_ports[us], lane.max_ports[vs],
                lane.max_wire_len[us], cross, len, latpart, bw, existing, us,
                vs, base_power);
            costk = hc.cost;
            linkk = hc.link;
          }
          const bool updatek =
              std::isfinite(costk) && ldist_u + costk < ldist[vs];
          if (updatek != update0 || (update0 && linkk != link0)) {
            lane.pending = true;
            continue;
          }
          if (updatek) {
            ldist[vs] = ldist_u + costk;
            scratch_.lane_heap[k].emplace_back(ldist[vs], v);
            std::push_heap(scratch_.lane_heap[k].begin(),
                           scratch_.lane_heap[k].end(), heap_after);
          }
        }
      };

      if (lanes_active) {
        // Bit-exact early skips: the full cost is >= latpart, and when no
        // link exists to reuse it is also >= the pair's opening floor
        // (see build_floor_matrix); IEEE addition is monotone, so a
        // filtered relaxation provably would not have updated the LEADER.
        // The two thresholds also dispose of done nodes (dist == -inf).
        // They prove nothing about a lane's own comparison (lane dists
        // accumulate different width-dependent surcharges), so with live
        // lanes the body still runs for EVERY target, with the leader's
        // choice pinned to "no update" when its filter fires. The 4-wide
        // path only batches the leader's two threshold comparisons (the
        // same lanes as the solo scan below), so the lead_skip flags — and
        // everything downstream — are bit-identical to the scalar loop's.
        int v = run.lo;
#if defined(VINOC_SIMD_VECTOR_EXT)
        if (use_simd_) {
          for (; v + simd::kWidth <= run.hi; v += simd::kWidth) {
            const unsigned m = relax_survivors4(
                &dist[static_cast<std::size_t>(v)],
                &floor_row[static_cast<std::size_t>(v)],
                &link_row[static_cast<std::size_t>(v)], lat_thresh, dist_u,
                latpart);
            for (int j = 0; j < simd::kWidth; ++j) {
              process_target(v + j, ((m >> j) & 1u) == 0u);
            }
          }
        }
#endif
        for (; v < run.hi; ++v) {
          const auto vs = static_cast<std::size_t>(v);
          const bool lead_skip =
              lat_thresh >= dist[vs] ||
              (link_row[vs] < 0 &&
               dist_u + (floor_row[vs] + latpart) >= dist[vs]);
          process_target(v, lead_skip);
        }
      } else {
        // Leader-only scan: the filter disposes of most targets without
        // touching the body. The 4-wide path evaluates the SAME two
        // threshold comparisons per lane (floors are compared, never
        // accumulated — see simd.hpp), so the survivor set is bit-identical
        // to the scalar tail loop's.
        int v = run.lo;
#if defined(VINOC_SIMD_VECTOR_EXT)
        if (use_simd_) {
          for (; v + simd::kWidth <= run.hi; v += simd::kWidth) {
            unsigned m = relax_survivors4(
                &dist[static_cast<std::size_t>(v)],
                &floor_row[static_cast<std::size_t>(v)],
                &link_row[static_cast<std::size_t>(v)], lat_thresh, dist_u,
                latpart);
            while (m != 0) {
              process_target(v + __builtin_ctz(m), false);
              m &= m - 1;
            }
          }
        }
#endif
        for (; v < run.hi; ++v) {
          const auto vs = static_cast<std::size_t>(v);
          const bool lead_skip =
              lat_thresh >= dist[vs] ||
              (link_row[vs] < 0 &&
               dist_u + (floor_row[vs] + latpart) >= dist[vs]);
          if (!lead_skip) process_target(v, false);
        }
      }
      }
    }

    // ---- Path-level route-equivalence certificates. A lane whose trace
    // left the lockstep this flow re-runs the flow's Dijkstra with its OWN
    // exact solo arithmetic and tie-breaks over the shared (proven-
    // identical) prefix state; when its canonical path equals the leader's
    // — same nodes, same reuse-vs-open choices — the topology mutation is
    // identical and the lane re-locks. Runs before materialisation, so a
    // rejection snapshots the pre-flow state. ----
    if (n_lanes != 0) {
      const bool leader_found =
          std::isfinite(dist[static_cast<std::size_t>(d_sw)]);
      for (std::size_t k = 0; k < n_lanes; ++k) {
        WidthLane& lane = (*lanes_)[k];
        if (lane.diverged || !lane.pending) continue;
        lane.pending = false;
        const bool lane_found = lane_cert_dijkstra(
            lane, flow, s_sw, d_sw, fclass, lat_part_intra, lat_part_cross);
        bool ok = lane_found == leader_found;
        if (ok && leader_found) {
          // Walk the leader's chain from the destination; at every node the
          // lane must have recorded the same predecessor AND the same link
          // choice. Each compared node is proven on the LANE's own path by
          // induction (it was reached through the lane's pred links from
          // d_sw), so no stale pred entry is ever trusted.
          for (int v = d_sw; v != s_sw;) {
            const auto vsz = static_cast<std::size_t>(v);
            if (scratch_.cert_pred[vsz] != pred[vsz] ||
                scratch_.cert_pred_link[vsz] != pred_link[vsz]) {
              ok = false;
              break;
            }
            v = pred[vsz];
          }
        }
        if (!ok) {
          diverge(lane);
          continue;
        }
        lane.used_certificate = true;
        ++lane.certificate_accepts;
      }
    }

    if (!std::isfinite(dist[static_cast<std::size_t>(d_sw)])) {
      outcome.failure_reason =
          "no admissible path for flow '" + flow.label + "'";
      outcome.failed_flow = static_cast<int>(flow_idx);
      return false;
    }

    // Materialize the path, opening links as needed.
    std::vector<int>& rev_nodes = scratch_.path;
    rev_nodes.clear();
    for (int v = d_sw; v != s_sw; v = pred[static_cast<std::size_t>(v)]) {
      rev_nodes.push_back(v);
    }
    std::reverse(rev_nodes.begin(), rev_nodes.end());
    int prev = s_sw;
    for (const int v : rev_nodes) {
      // An earlier hop of this same path may have opened a link or consumed
      // ports, but hops of one shortest path touch distinct switches, so the
      // cached choice stays valid.
      int link_id = pred_link[static_cast<std::size_t>(v)];
      if (link_id < 0) {
        link_id = open_link(prev, v);
      }
      TopLink& l = topo_.links[static_cast<std::size_t>(link_id)];
      l.carried_bw_bits_per_s += flow.bandwidth_bits_per_s;
      l.flows.push_back(static_cast<int>(flow_idx));
      route.links.push_back(link_id);
      if (power_lb_ >= 0.0) {
        accumulate_power_lb(prev, v, l, flow.bandwidth_bits_per_s,
                            /*pass_through=*/v != d_sw);
      }
      prev = v;
    }
    route.crossings = 0;
    for (const int l : route.links) {
      if (topo_.links[static_cast<std::size_t>(l)].crosses_island) ++route.crossings;
    }
    route.latency_cycles = route_latency_cycles(topo_, route, opts_.tech);
    if (route.latency_cycles > flow.max_latency_cycles + 1e-9) {
      outcome.failure_reason = "latency violated for flow '" + flow.label +
                               "' (" + std::to_string(route.latency_cycles) +
                               " > " + std::to_string(flow.max_latency_cycles) + ")";
      outcome.failed_flow = static_cast<int>(flow_idx);
      outcome.latency_violation = true;
      return false;
    }
    return true;
  }

  /// Rebuilds the hop sequence of a FINISHED route in path order: endpoint
  /// switch ids per link plus whether THIS flow opened the link (it did iff
  /// it is the link's first user — links record their users in routing
  /// order). Shared by the delta recorder and the live-route comparison.
  void reconstruct_hops(std::size_t flow_idx, std::vector<DeltaHop>& hops) const {
    hops.clear();
    const FlowRoute& route = topo_.routes[flow_idx];
    for (const int lid : route.links) {
      const TopLink& l = topo_.links[static_cast<std::size_t>(lid)];
      DeltaHop h;
      h.src = l.src_switch;
      h.dst = l.dst_switch;
      h.open = !l.flows.empty() && l.flows.front() == static_cast<int>(flow_idx)
                   ? 1
                   : 0;
      hops.push_back(h);
    }
  }

  /// Marks every REAL island touched by `hops` as diverged from the
  /// reference: its incremental state no longer matches, so later intra-
  /// island flows of that island must route live. (The intermediate VI
  /// carries no intra-island flows; it needs no taint.)
  void taint_hops(const std::vector<DeltaHop>& hops) {
    for (const DeltaHop& h : hops) {
      for (const int sw : {h.src, h.dst}) {
        if (sw < 0 || sw >= static_cast<int>(n_)) continue;
        const int isl = scratch_.island_of[static_cast<std::size_t>(sw)];
        if (isl != kIntermediateIsland &&
            static_cast<std::size_t>(isl) < delta_->island_tainted.size()) {
          delta_->island_tainted[static_cast<std::size_t>(isl)] = 1;
        }
      }
    }
  }

  /// Replays a recorded reference route onto the current topology without a
  /// Dijkstra: open where the reference opened, reuse the pair's latest
  /// link where it reused, with exactly the state mutations and bound
  /// accounting the materialisation loop performs. Returns 1 when routed,
  /// 0 on a latency violation (`outcome` filled, identically to the live
  /// path), -1 when the record is not applicable (malformed chain or a
  /// missing reuse link — never expected for an in-sync island; the caller
  /// falls back to live routing).
  int replay_recorded_flow(std::size_t flow_idx, const DeltaRouteRec& rec,
                           int s_sw, int d_sw, RouteOutcome& outcome) {
    // Validate before mutating anything.
    if (rec.hops.empty() || rec.hops.front().src != s_sw ||
        rec.hops.back().dst != d_sw) {
      return -1;
    }
    int prev = s_sw;
    for (const DeltaHop& h : rec.hops) {
      if (h.src != prev || h.src < 0 || h.dst < 0 ||
          h.src >= static_cast<int>(n_) || h.dst >= static_cast<int>(n_)) {
        return -1;
      }
      if (h.open == 0 &&
          scratch_.link_at[static_cast<std::size_t>(h.src) * n_ +
                           static_cast<std::size_t>(h.dst)] < 0) {
        return -1;
      }
      prev = h.dst;
    }

    const soc::Flow& flow = spec_.flows[flow_idx];
    FlowRoute& route = topo_.routes[flow_idx];
    route.src_switch = s_sw;
    route.dst_switch = d_sw;
    const double bw = flow.bandwidth_bits_per_s;
    for (const DeltaHop& h : rec.hops) {
      const int link_id =
          h.open != 0 ? open_link(h.src, h.dst)
                      : scratch_.link_at[static_cast<std::size_t>(h.src) * n_ +
                                         static_cast<std::size_t>(h.dst)];
      TopLink& l = topo_.links[static_cast<std::size_t>(link_id)];
      l.carried_bw_bits_per_s += bw;
      l.flows.push_back(static_cast<int>(flow_idx));
      route.links.push_back(link_id);
      if (power_lb_ >= 0.0) {
        accumulate_power_lb(h.src, h.dst, l, bw, /*pass_through=*/h.dst != d_sw);
      }
    }
    route.crossings = 0;
    for (const int l : route.links) {
      if (topo_.links[static_cast<std::size_t>(l)].crosses_island) ++route.crossings;
    }
    route.latency_cycles = route_latency_cycles(topo_, route, opts_.tech);
    if (route.latency_cycles > flow.max_latency_cycles + 1e-9) {
      outcome.failure_reason = "latency violated for flow '" + flow.label +
                               "' (" + std::to_string(route.latency_cycles) +
                               " > " + std::to_string(flow.max_latency_cycles) + ")";
      outcome.failed_flow = static_cast<int>(flow_idx);
      outcome.latency_violation = true;
      return 0;
    }
    return 1;
  }

  /// One flow of an armed delta run (see DeltaRouteState). UNTOUCHED flows
  /// — intra-island, island still in sync — replay the record (or, under
  /// the forced certificate, re-derive the path with their own solo
  /// Dijkstra and verify it against the record). AFFECTED flows — cross-
  /// island (their admissible switch set includes the intermediates the
  /// config diff changed) or on a tainted island — route live; a live
  /// cross route whose hop sequence differs from the record's ends reuse
  /// for every island either sequence touches.
  bool delta_route_flow(std::size_t pos, std::size_t flow_idx,
                        RouteOutcome& outcome) {
    const soc::Flow& flow = spec_.flows[flow_idx];
    const int s_sw = topo_.switch_of_core[static_cast<std::size_t>(flow.src)];
    const int d_sw = topo_.switch_of_core[static_cast<std::size_t>(flow.dst)];
    if (s_sw == d_sw) {
      // Trivial either way (no links, no state change): route live,
      // uncounted — it would inflate the reuse rate without saving work.
      return route_flow(flow_idx, outcome);
    }
    const soc::IslandId src_isl =
        spec_.cores[static_cast<std::size_t>(flow.src)].island;
    const soc::IslandId dst_isl =
        spec_.cores[static_cast<std::size_t>(flow.dst)].island;
    const DeltaRouteRec& rec = delta_->ref->records[pos];
    const bool intra = src_isl == dst_isl;
    if (intra && delta_->island_tainted[static_cast<std::size_t>(src_isl)] == 0) {
      if (cert_forced_) {
        // Route-equivalence certificate: the flow's own solo Dijkstra over
        // the current state (route_flow IS that Dijkstra; it shares
        // choose_hop with the width-lane certificates). Acceptance proves
        // the replay would have been bit-identical; a rejection taints the
        // island and keeps the certified path, so results never depend on
        // the record being right.
        if (!route_flow(flow_idx, outcome)) return false;
        reconstruct_hops(flow_idx, delta_->actual_hops);
        if (delta_->actual_hops == rec.hops) {
          ++delta_->flows_certified;
        } else {
          ++delta_->cert_rejects;
          ++delta_->flows_rerouted;
          taint_hops(rec.hops);
          taint_hops(delta_->actual_hops);
        }
        return true;
      }
      const int replayed = replay_recorded_flow(flow_idx, rec, s_sw, d_sw, outcome);
      if (replayed >= 0) {
        ++delta_->flows_reused;
        return replayed != 0;
      }
      // Record not applicable (defensive; never expected while in sync):
      // end reuse for this island and route live below.
      delta_->island_tainted[static_cast<std::size_t>(src_isl)] = 1;
    }
    if (!route_flow(flow_idx, outcome)) return false;
    ++delta_->flows_rerouted;
    if (!intra) {
      // A cross flow that routed exactly as the reference's record leaves
      // every island it touched in sync; any difference (typically: the
      // intermediate VI absorbed it) diverges them.
      reconstruct_hops(flow_idx, delta_->actual_hops);
      if (!(delta_->actual_hops == rec.hops)) {
        taint_hops(rec.hops);
        taint_hops(delta_->actual_hops);
      }
    }
    return true;
  }

  /// The certificate's Dijkstra: the CURRENT flow routed at `lane`'s width
  /// and frequencies over the current shared topology state, with exactly
  /// the algorithm (lazy-heap extraction, latency-part relaxation filter,
  /// done-clobber, reuse-vs-open selection, IEEE operation order) a solo
  /// run at that width would use — given the proven-identical prefix, the
  /// resulting dist/pred/pred_link ARE the solo run's. The leader's
  /// opening-floor filter is deliberately not replicated (its floors are
  /// built for the leader's width): omitting a provably-no-op filter leaves
  /// results bit-identical. Fills scratch_.cert_* and returns whether the
  /// destination was reached.
  bool lane_cert_dijkstra(const WidthLane& lane, const soc::Flow& flow,
                          int s_sw, int d_sw,
                          const RoutingGeometry::FlowClass& fclass,
                          double lat_part_intra, double lat_part_cross) {
    const std::size_t n = n_;
    std::vector<double>& dist = scratch_.cert_dist;
    std::vector<int>& pred = scratch_.cert_pred;
    std::vector<int>& pred_link = scratch_.cert_pred_link;
    std::vector<std::pair<double, int>>& heap = scratch_.cert_heap;
    dist.assign(n, kInf);
    if (pred.size() < n) {
      pred.resize(n, -1);
      pred_link.resize(n, -1);
    }
    dist[static_cast<std::size_t>(s_sw)] = 0.0;
    heap.clear();
    heap.emplace_back(0.0, s_sw);
    auto heap_after = [](const std::pair<double, int>& a,
                         const std::pair<double, int>& b) {
      return a.first > b.first || (a.first == b.first && a.second > b.second);
    };
    const double bw = flow.bandwidth_bits_per_s;
    const double widthk = static_cast<double>(lane.width_bits);
    const bool forbid = opts_.forbid_direct_cross;
    while (true) {
      int u = -1;
      double dist_u = 0.0;
      while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), heap_after);
        const auto [du, cand] = heap.back();
        heap.pop_back();
        if (du != dist[static_cast<std::size_t>(cand)]) continue;
        u = cand;
        dist_u = du;
        break;
      }
      if (u < 0) break;
      const auto us = static_cast<std::size_t>(u);
      if (u == d_sw) break;
      dist[us] = -kInf;

      const double freq_u = lane.switch_freq[us];
      const double wire_cap_u =
          opts_.enforce_wire_timing ? lane.max_wire_len[us] : 0.0;
      const double* hop_row = &scratch_.geometry.hop_len[us * n_];
      const int* link_row = &scratch_.link_at[us * n_];
      const int run_end = fclass.run_begin[us + 1];
      for (int rr = fclass.run_begin[us]; rr < run_end; ++rr) {
        const RoutingGeometry::HopRun& run =
            fclass.runs[static_cast<std::size_t>(rr)];
        if (forbid && run.direct_cross != 0) continue;
        const bool cross = run.crossing != 0;
        const double latpart = cross ? lat_part_cross : lat_part_intra;
        const double lat_thresh = dist_u + latpart;
        for (int v = run.lo; v < run.hi; ++v) {
          const auto vs = static_cast<std::size_t>(v);
          if (lat_thresh >= dist[vs]) continue;  // also disposes done nodes
          const int existing = link_row[vs];
          const double len = hop_row[vs];
          double p_base = -1.0;
          auto base_power = [&]() {
            if (p_base < 0.0) {
              double p = link_dyn_c_ * len * bw;
              p += scratch_.ebit_of[vs] * bw;
              if (cross) p += fifo_dyn_c_ * bw;
              p_base = p;
            }
            return p_base;
          };
          const HopChoice hc = choose_hop(
              widthk, freq_u, lane.switch_freq[vs], lane.max_ports[us],
              lane.max_ports[vs], wire_cap_u, cross, len, latpart, bw,
              existing, us, vs, base_power);
          if (std::isfinite(hc.cost) && dist_u + hc.cost < dist[vs]) {
            dist[vs] = dist_u + hc.cost;
            pred[vs] = u;
            pred_link[vs] = hc.link;
            heap.emplace_back(dist[vs], v);
            std::push_heap(heap.begin(), heap.end(), heap_after);
          }
        }
      }
    }
    return std::isfinite(dist[static_cast<std::size_t>(d_sw)]);
  }

  /// Adds the sound, refine-stable part of this bandwidth increment to the
  /// running power lower bound: FIFO energy on crossings (bandwidth-only),
  /// wire energy only when neither endpoint is an intermediate switch
  /// (position refinement moves intermediate switches, so those wire lengths
  /// may still change; island switches never move), and the downstream
  /// switch's traffic energy at its core-only port floor when the hop makes
  /// the flow VISIT a switch its endpoint floor did not count.
  void accumulate_power_lb(int a, int b, const TopLink& l, double bw,
                           bool pass_through) {
    const soc::IslandId a_isl = island_of_switch(topo_, a);
    const soc::IslandId b_isl = island_of_switch(topo_, b);
    if (a_isl != b_isl) power_lb_ += fifo_w_per_bw_ * bw;
    if (a_isl != kIntermediateIsland && b_isl != kIntermediateIsland) {
      power_lb_ += link_w_per_bw_mm_ * l.length_mm * bw;
    }
    if (pass_through && bound_->switch_ebit_floor != nullptr) {
      power_lb_ += (*bound_->switch_ebit_floor)[static_cast<std::size_t>(b)] * bw;
    }
  }

  int open_link(int a, int b) {
    TopLink l;
    l.src_switch = a;
    l.dst_switch = b;
    l.crosses_island = crossing(a, b);
    l.length_mm = hop_length_mm(a, b);
    const int id = static_cast<int>(topo_.links.size());
    topo_.links.push_back(std::move(l));
    scratch_.link_at[static_cast<std::size_t>(a) * n_ +
                     static_cast<std::size_t>(b)] = id;
    ++scratch_.ports_out[static_cast<std::size_t>(a)];
    ++scratch_.ports_in[static_cast<std::size_t>(b)];
    refresh_ebit(a);
    refresh_ebit(b);
    if (power_lb_ >= 0.0) {
      // The two new ports clock forever: their idle power is an exact,
      // monotone addition to the final switch dynamic power.
      power_lb_ += idle_w_per_hz_ * (switch_freq(topo_, a) + switch_freq(topo_, b));
    }
    return id;
  }

  NocTopology& topo_;
  const soc::SocSpec& spec_;
  const RouterOptions& opts_;
  RouterScratch& scratch_;
  const RouteBound* bound_ = nullptr;
  std::vector<WidthLane>* lanes_ = nullptr;
  DeltaReference* rec_out_ = nullptr;  ///< recording observer (reference runs)
  DeltaRouteState* delta_ = nullptr;   ///< delta replay state (member runs)
  bool delta_apply_ = false;  ///< delta armed: reference valid, p_norm equal
  bool cert_forced_ = false;  ///< verify every replay with its solo Dijkstra
  models::SwitchModel sw_model_;
  models::LinkModel link_model_;
  models::BisyncFifoModel fifo_model_;
  std::size_t n_ = 0;
  double p_norm_ = 1.0;
  // Admissible-subset iteration (see route_flow).
  std::vector<int> island_begin_;
  std::vector<int> island_end_;
  bool contiguous_ = false;
  /// Vectorized relaxation filter enabled (compiled in AND not disabled at
  /// runtime); sampled once at construction.
  bool use_simd_ = false;
  // Cached model coefficients (see constructor).
  double link_dyn_c_ = 0.0;
  double link_leak_c_ = 0.0;
  double fifo_dyn_c_ = 0.0;
  double fifo_leak_w_ = 0.0;
  double idle_w_per_hz_ = 0.0;
  double hop_lat_intra_ = 0.0;
  double hop_lat_cross_ = 0.0;
  std::vector<double> floor_;  ///< n x n opening-cost floors of this pass
  std::vector<double> lane_dist_u_;  ///< per-lane dist of the extracted node
  std::size_t order_pos_ = 0;        ///< current position in the flow order
  int pass_id_ = 1;                  ///< 1 = greedy pass, 2 = retry pass
  // Pruning state; power_lb_ < 0 means pruning disabled for this pass.
  double power_lb_ = -1.0;
  double lat_sum_lb_ = 0.0;
  double fifo_w_per_bw_ = 0.0;
  double link_w_per_bw_mm_ = 0.0;
};

/// Resets `g` for a new candidate topology: hop lengths and their leakage
/// scalings recomputed, class runs invalidated (buffers kept, refilled
/// lazily). `link_leak_c` is fl(link_leakage_mw_per_wire_mm * 1e-3) — a
/// pure technology constant, so the leak_len matrix stays width-invariant.
void prepare_geometry(RoutingGeometry& g, const NocTopology& topo,
                      std::size_t n_islands, double link_leak_c) {
  const std::size_t n = topo.switches.size();
  g.n = n;
  g.n_islands = n_islands;
  g.hop_len.assign(n * n, 0.0);
  g.leak_len.assign(n * n, 0.0);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      g.hop_len[a * n + b] =
          floorplan::manhattan_mm(topo.switches[a].pos, topo.switches[b].pos);
      g.leak_len[a * n + b] = link_leak_c * g.hop_len[a * n + b];
    }
  }
  const std::size_t n_classes = (n_islands + 1) * (n_islands + 1);
  if (g.classes.size() != n_classes) g.classes.resize(n_classes);
  for (RoutingGeometry::FlowClass& c : g.classes) c.built = false;
}

}  // namespace

RouteOutcome route_all_flows(NocTopology& topo, const soc::SocSpec& spec,
                             const RouterOptions& options, RouterScratch* scratch,
                             const RouteBound* bound, DeltaReference* record,
                             DeltaRouteState* delta) {
  if (options.max_ports.size() != topo.switches.size()) {
    RouteOutcome out;
    out.failure_reason = "RouterOptions::max_ports size mismatch";
    return out;
  }
  RouterScratch local;
  RouterScratch& sc = scratch != nullptr ? *scratch : local;
  if (sc.geometry_token == 0 || sc.geometry_built_token != sc.geometry_token) {
    prepare_geometry(sc.geometry, topo, spec.islands.size(),
                     options.tech.link_leakage_mw_per_wire_mm * 1e-3);
    sc.geometry_built_token = sc.geometry_token;
  }
  if (record != nullptr) {
    record->records.clear();
    record->p_norm = 0.0;
    record->valid = false;
  }
  if (delta != nullptr) {
    delta->pnorm_matched = false;
    delta->flows_reused = 0;
    delta->flows_certified = 0;
    delta->flows_rerouted = 0;
    delta->cert_rejects = 0;
  }

  bool has_intermediate = false;
  for (const SwitchInst& s : topo.switches) {
    if (s.island == kIntermediateIsland) has_intermediate = true;
  }
  // Mid-routing pruning is only sound when the fallback pass cannot change
  // the outcome: a pass-1 abandonment would otherwise hide the pass-2 design
  // the unpruned path could still have produced. (The pre-routing base bound
  // covers both passes and is checked by the evaluation stage.)
  const bool fallback_possible = has_intermediate && !options.forbid_direct_cross;
  const RouteBound* pass1_bound = fallback_possible ? nullptr : bound;

  if (fallback_possible) {
    sc.fallback = topo;  // pristine copy for the retry pass (capacity reused)
  }
  RouteOutcome first;
  {
    // Recording observes pass 1 only: the records describe the greedy
    // pass's trajectory, which is exactly what a consumer's pass 1 (and,
    // for intra-island flows, its pass 2) must be compared against. A
    // reference that fails or prunes mid-pass still leaves a usable
    // routed prefix.
    Router router(topo, spec, options, sc, pass1_bound, nullptr, /*pass_id=*/1,
                  /*resume_state=*/false, record, delta);
    if (record != nullptr) {
      record->p_norm = router.p_norm();
      record->valid = true;
    }
    first = router.run();
    if (first.success || first.pruned || options.forbid_direct_cross) {
      return first;
    }
  }
  if (!fallback_possible) return first;
  // Greedy pass stranded a flow. An intermediate switch exists, so retry
  // with all cross-island traffic concentrated through the NoC VI (far
  // fewer ports consumed on the island switches).
  OBS_SPAN("route_fallback_pass");
  topo = sc.fallback;
  RouterOptions retry = options;
  retry.forbid_direct_cross = true;
  Router router(topo, spec, retry, sc, bound, nullptr, /*pass_id=*/2,
                /*resume_state=*/false, nullptr, delta);
  RouteOutcome second = router.run();
  if (!second.success && !second.pruned) {
    // Report the greedy pass's diagnosis; it is usually more informative.
    second.failure_reason = first.failure_reason;
    second.failed_flow = first.failed_flow;
    second.latency_violation = first.latency_violation;
  }
  return second;
}

RouteOutcome route_all_flows_multi(NocTopology& topo, const soc::SocSpec& spec,
                                   const RouterOptions& options,
                                   std::vector<WidthLane>& lanes,
                                   RouterScratch* scratch, bool* pass2_ran,
                                   RouteOutcome* pass1_failure) {
  if (pass2_ran != nullptr) *pass2_ran = false;
  if (options.max_ports.size() != topo.switches.size()) {
    RouteOutcome out;
    out.failure_reason = "RouterOptions::max_ports size mismatch";
    return out;
  }
  RouterScratch local;
  RouterScratch& sc = scratch != nullptr ? *scratch : local;
  if (sc.geometry_token == 0 || sc.geometry_built_token != sc.geometry_token) {
    prepare_geometry(sc.geometry, topo, spec.islands.size(),
                     options.tech.link_leakage_mw_per_wire_mm * 1e-3);
    sc.geometry_built_token = sc.geometry_token;
  }

  bool has_intermediate = false;
  for (const SwitchInst& s : topo.switches) {
    if (s.island == kIntermediateIsland) has_intermediate = true;
  }
  const bool fallback_possible = has_intermediate && !options.forbid_direct_cross;
  if (fallback_possible) {
    sc.fallback = topo;  // pristine copy for the retry pass
  }
  RouteOutcome first;
  {
    Router router(topo, spec, options, sc, nullptr, &lanes, /*pass_id=*/1);
    first = router.run();
    if (first.success || options.forbid_direct_cross) return first;
  }
  if (pass1_failure != nullptr) *pass1_failure = first;
  if (!fallback_possible) return first;
  // Leader pass 1 stranded a flow. Every still-locked lane is proven to
  // strand the same flow (its decisions matched to the failure point), so
  // all of them enter the intermediate-island retry pass together; lanes
  // that diverged in pass 1 stay diverged.
  topo = sc.fallback;
  RouterOptions retry = options;
  retry.forbid_direct_cross = true;
  if (pass2_ran != nullptr) *pass2_ran = true;
  Router router(topo, spec, retry, sc, nullptr, &lanes, /*pass_id=*/2);
  RouteOutcome second = router.run();
  if (!second.success) {
    second.failure_reason = first.failure_reason;
    second.failed_flow = first.failed_flow;
    second.latency_violation = first.latency_violation;
  }
  return second;
}

RouteOutcome resume_route_flows(NocTopology& topo, const soc::SocSpec& spec,
                                const RouterOptions& options,
                                int resume_order_pos, RouterScratch* scratch) {
  if (options.max_ports.size() != topo.switches.size()) {
    RouteOutcome out;
    out.failure_reason = "RouterOptions::max_ports size mismatch";
    return out;
  }
  RouterScratch local;
  RouterScratch& sc = scratch != nullptr ? *scratch : local;
  if (sc.geometry_token == 0 || sc.geometry_built_token != sc.geometry_token) {
    prepare_geometry(sc.geometry, topo, spec.islands.size(),
                     options.tech.link_leakage_mw_per_wire_mm * 1e-3);
    sc.geometry_built_token = sc.geometry_token;
  }
  Router router(topo, spec, options, sc, nullptr, nullptr,
                options.forbid_direct_cross ? 2 : 1, /*resume_state=*/true);
  return router.run(static_cast<std::size_t>(resume_order_pos));
}

RouteOutcome resume_route_flows_multi(NocTopology& topo,
                                      const soc::SocSpec& spec,
                                      const RouterOptions& options,
                                      int resume_order_pos,
                                      std::vector<WidthLane>& lanes,
                                      RouterScratch* scratch) {
  if (options.max_ports.size() != topo.switches.size()) {
    RouteOutcome out;
    out.failure_reason = "RouterOptions::max_ports size mismatch";
    return out;
  }
  RouterScratch local;
  RouterScratch& sc = scratch != nullptr ? *scratch : local;
  if (sc.geometry_token == 0 || sc.geometry_built_token != sc.geometry_token) {
    prepare_geometry(sc.geometry, topo, spec.islands.size(),
                     options.tech.link_leakage_mw_per_wire_mm * 1e-3);
    sc.geometry_built_token = sc.geometry_token;
  }
  Router router(topo, spec, options, sc, nullptr, &lanes,
                options.forbid_direct_cross ? 2 : 1, /*resume_state=*/true);
  return router.run(static_cast<std::size_t>(resume_order_pos));
}

}  // namespace vinoc::core

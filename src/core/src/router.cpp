#include "vinoc/core/router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "vinoc/core/prune.hpp"

namespace vinoc::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

soc::IslandId island_of_switch(const NocTopology& topo, int sw) {
  return topo.switches[static_cast<std::size_t>(sw)].island;
}

double switch_freq(const NocTopology& topo, int sw) {
  return topo.switches[static_cast<std::size_t>(sw)].freq_hz;
}

}  // namespace

std::vector<std::size_t> bandwidth_descending_order(const soc::SocSpec& spec) {
  std::vector<std::size_t> order(spec.flows.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&spec](std::size_t a, std::size_t b) {
                     return spec.flows[a].bandwidth_bits_per_s >
                            spec.flows[b].bandwidth_bits_per_s;
                   });
  return order;
}

bool link_admissible(soc::IslandId a_isl, soc::IslandId b_isl,
                     soc::IslandId src_isl, soc::IslandId dst_isl) {
  if (src_isl == dst_isl) {
    // Intra-island flow: never leaves its island.
    return a_isl == src_isl && b_isl == src_isl;
  }
  if (a_isl == b_isl) {
    // Intra-island hop inside the source island, the destination island or
    // the intermediate NoC VI.
    return a_isl == src_isl || a_isl == dst_isl || a_isl == kIntermediateIsland;
  }
  // Cross-island hop: direct source->destination, or via the intermediate.
  if (a_isl == src_isl && b_isl == dst_isl) return true;
  if (a_isl == src_isl && b_isl == kIntermediateIsland) return true;
  if (a_isl == kIntermediateIsland && b_isl == dst_isl) return true;
  return false;
}

namespace {

/// Mutable routing state over a topology under construction. All transient
/// buffers live in the caller-provided RouterScratch, reset per construction
/// (assign, never shrink) so a sweep reuses one arena across candidates.
class Router {
 public:
  Router(NocTopology& topo, const soc::SocSpec& spec, const RouterOptions& opts,
         RouterScratch& scratch, const RouteBound* bound)
      : topo_(topo), spec_(spec), opts_(opts), scratch_(scratch), bound_(bound),
        sw_model_(opts.tech), link_model_(opts.tech), fifo_model_(opts.tech) {
    const std::size_t n_sw = topo_.switches.size();
    n_ = n_sw;
    scratch_.ports_in.assign(n_sw, 0);
    scratch_.ports_out.assign(n_sw, 0);
    for (std::size_t s = 0; s < n_sw; ++s) {
      scratch_.ports_in[s] = static_cast<int>(topo_.switches[s].cores.size());
      scratch_.ports_out[s] = scratch_.ports_in[s];
    }
    scratch_.link_at.assign(n_sw * n_sw, -1);
    // Power normalizer: opening a "typical" link (quarter-chip wire at the
    // design's peak flow bandwidth, with a FIFO).
    double max_bw = 0.0;
    double max_span = 0.0;
    for (const soc::Flow& f : spec_.flows) {
      max_bw = std::max(max_bw, f.bandwidth_bits_per_s);
    }
    for (const SwitchInst& s : topo_.switches) {
      max_span = std::max({max_span, s.pos.x_mm, s.pos.y_mm});
    }
    const double ref_len = std::max(0.5, max_span / 2.0);
    p_norm_ = link_model_.dynamic_power_w(ref_len, std::max(max_bw, 1.0)) +
              fifo_model_.dynamic_power_w(std::max(max_bw, 1.0));
    if (p_norm_ <= 0.0) p_norm_ = 1e-3;

    // The edge-cost inner loop runs millions of times per sweep; hoist the
    // model constants and the pure per-switch/per-pair geometry out of it.
    // Every cached expression replicates its model function's operation
    // order exactly (see noc_models.cpp), so costs — and therefore routing
    // decisions — are bit-identical to calling the models per edge.
    const models::Technology& tech = opts_.tech;
    link_dyn_c_ = tech.link_energy_pj_per_bit_mm * 1e-12;
    link_leak_c_ = tech.link_leakage_mw_per_wire_mm * 1e-3;
    fifo_dyn_c_ = tech.fifo_energy_pj_per_bit * 1e-12;
    fifo_leak_w_ = tech.fifo_leakage_mw * 1e-3;
    scratch_.hop_len.assign(n_sw * n_sw, 0.0);
    for (std::size_t a = 0; a < n_sw; ++a) {
      for (std::size_t b = 0; b < n_sw; ++b) {
        scratch_.hop_len[a * n_sw + b] = floorplan::manhattan_mm(
            topo_.switches[a].pos, topo_.switches[b].pos);
      }
    }
    scratch_.max_wire_len.assign(n_sw, 0.0);
    if (opts_.enforce_wire_timing) {
      for (std::size_t s = 0; s < n_sw; ++s) {
        scratch_.max_wire_len[s] =
            link_model_.max_unpipelined_length_mm(topo_.switches[s].freq_hz);
      }
    }

    if (bound_ != nullptr && bound_->front != nullptr) {
      power_lb_ = bound_->base_power_lb_w;
      lat_sum_lb_ = bound_->base_latency_sum_cycles;
      fifo_w_per_bw_ = opts_.tech.fifo_energy_pj_per_bit * 1e-12;
      link_w_per_bw_mm_ = opts_.tech.link_energy_pj_per_bit_mm * 1e-12;
      idle_w_per_hz_ = opts_.tech.sw_idle_power_per_port_w_per_hz;
    }

    // Per-island contiguous index ranges, so each flow's Dijkstra can visit
    // only its admissible switches (source island, destination island, the
    // intermediate VI) instead of the full switch set. Topologies from the
    // synthesis pipeline are always laid out islands-ascending with the
    // intermediates last; anything else (hand-built) falls back to the full
    // range, which is merely slower, never different — inadmissible nodes
    // can neither be relaxed nor extracted (their distance stays infinite).
    const std::size_t n_islands = spec.islands.size();
    island_begin_.assign(n_islands + 1, -1);
    island_end_.assign(n_islands + 1, -1);
    contiguous_ = true;
    for (std::size_t s = 0; s < n_sw; ++s) {
      const soc::IslandId isl = topo_.switches[s].island;
      const std::size_t slot =
          isl == kIntermediateIsland ? n_islands : static_cast<std::size_t>(isl);
      if (island_begin_[slot] < 0) {
        island_begin_[slot] = static_cast<int>(s);
        island_end_[slot] = static_cast<int>(s + 1);
      } else if (island_end_[slot] == static_cast<int>(s)) {
        island_end_[slot] = static_cast<int>(s + 1);
      } else {
        contiguous_ = false;  // island split across the array
        break;
      }
    }
    if (contiguous_) {
      // Ranges must also appear in ascending island order (intermediate
      // last) so the subset scan visits indices ascending, preserving the
      // lowest-index tie-break of the dense scan.
      int prev_end = 0;
      for (std::size_t slot = 0; slot <= n_islands && contiguous_; ++slot) {
        if (island_begin_[slot] < 0) continue;  // island without switches
        if (island_begin_[slot] < prev_end) contiguous_ = false;
        prev_end = island_end_[slot];
      }
    }
  }

  RouteOutcome run() {
    topo_.routes.assign(spec_.flows.size(), FlowRoute{});

    // The order is a pure function of the spec, so sweep callers pass it
    // precomputed; direct callers fall back to sorting here.
    const std::vector<std::size_t>* order = opts_.flow_order;
    if (order == nullptr) {
      scratch_.flow_order = bandwidth_descending_order(spec_);
      order = &scratch_.flow_order;
    }

    const bool bounding = bound_ != nullptr && bound_->front != nullptr &&
                          bound_->min_flow_latency != nullptr &&
                          !spec_.flows.empty();
    const double inv_flows =
        spec_.flows.empty() ? 0.0 : 1.0 / static_cast<double>(spec_.flows.size());

    RouteOutcome outcome;
    for (const std::size_t f : *order) {
      if (!route_flow(f, outcome)) return outcome;
      ++outcome.flows_routed;
      if (bounding) {
        // Replace this flow's minimum latency with its exact final latency
        // (routes never change after routing) — both bounds stay monotone
        // lower bounds on the finished design's metrics.
        lat_sum_lb_ += topo_.routes[f].latency_cycles -
                       (*bound_->min_flow_latency)[f];
        const double avg_lb = lat_sum_lb_ * inv_flows;
        if (bound_->front->dominated(power_lb_, avg_lb)) {
          outcome.pruned = true;
          outcome.bound_checked = true;
          outcome.pruned_power_lb_w = power_lb_;
          outcome.pruned_latency_lb_cycles = avg_lb;
          return outcome;
        }
      }
    }
    outcome.success = true;
    if (bounding) {
      // Expose the last-checkpoint bounds: the merge stage re-checks them
      // against the enumeration-ordered front to decide whether a
      // sequential run (with a possibly richer front than our snapshot)
      // would have pruned this candidate.
      outcome.bound_checked = true;
      outcome.pruned_power_lb_w = power_lb_;
      outcome.pruned_latency_lb_cycles = lat_sum_lb_ * inv_flows;
    }
    return outcome;
  }

 private:
  struct EdgeChoice {
    int link_id = -1;  ///< -1 = would open a new link
    double cost = kInf;
    double latency_cycles = 0.0;
  };

  bool crossing(int a, int b) const {
    return island_of_switch(topo_, a) != island_of_switch(topo_, b);
  }

  double link_capacity(int a, int b) const {
    const double f = std::min(switch_freq(topo_, a), switch_freq(topo_, b));
    return static_cast<double>(opts_.link_width_bits) * f;
  }

  double hop_length_mm(int a, int b) const {
    return scratch_.hop_len[static_cast<std::size_t>(a) * n_ +
                            static_cast<std::size_t>(b)];
  }

  double hop_latency_cycles(int a, int b) const {
    const double link_cycles =
        crossing(a, b) ? static_cast<double>(opts_.tech.fifo_latency_cycles) : 1.0;
    return link_cycles + opts_.tech.sw_pipeline_cycles;
  }

  int link_between(int a, int b) const {
    return scratch_.link_at[static_cast<std::size_t>(a) * n_ +
                            static_cast<std::size_t>(b)];
  }

  /// Marginal power of pushing `bw` over the hop a->b, plus (for new links)
  /// the static cost of opening it. Pure arithmetic on the coefficients
  /// cached at construction — same formulas, same operation order, same
  /// bits as the model calls (LinkModel/SwitchModel/BisyncFifoModel).
  double hop_power_w(int a, int b, double bw, bool opening) const {
    const double len = hop_length_mm(a, b);
    double p = link_dyn_c_ * len * bw;
    // Crossbar traversal energy in the downstream switch (at zero frequency
    // the switch model's idle term vanishes; only energy-per-bit remains).
    const int ports_b = std::max(scratch_.ports_in[static_cast<std::size_t>(b)],
                                 scratch_.ports_out[static_cast<std::size_t>(b)]);
    const double e_bit = (opts_.tech.sw_energy_base_pj_per_bit +
                          opts_.tech.sw_energy_per_port_pj_per_bit * ports_b) *
                         1e-12;
    p += e_bit * bw;
    if (crossing(a, b)) p += fifo_dyn_c_ * bw;
    if (opening) {
      // New ports clock on both sides; wires and (if crossing) a FIFO leak.
      p += opts_.tech.sw_idle_power_per_port_w_per_hz *
           (switch_freq(topo_, a) + switch_freq(topo_, b));
      p += link_leak_c_ * len * opts_.link_width_bits;
      if (crossing(a, b)) p += fifo_leak_w_;
    }
    return p;
  }

  /// Best admissible way to go a->b for this flow, or cost = +inf.
  EdgeChoice edge_choice(int a, int b, const soc::Flow& flow) const {
    EdgeChoice choice;
    const soc::IslandId src_isl =
        spec_.cores[static_cast<std::size_t>(flow.src)].island;
    const soc::IslandId dst_isl =
        spec_.cores[static_cast<std::size_t>(flow.dst)].island;
    const soc::IslandId a_isl = island_of_switch(topo_, a);
    const soc::IslandId b_isl = island_of_switch(topo_, b);
    if (!link_admissible(a_isl, b_isl, src_isl, dst_isl)) {
      return choice;
    }
    if (opts_.forbid_direct_cross && a_isl != b_isl &&
        a_isl != kIntermediateIsland && b_isl != kIntermediateIsland) {
      return choice;
    }
    choice.latency_cycles = hop_latency_cycles(a, b);
    const double lat_term = choice.latency_cycles / flow.max_latency_cycles;
    const double bw = flow.bandwidth_bits_per_s;

    // Reusing an existing link is preferred when it has residual capacity.
    const int existing = link_between(a, b);
    if (existing >= 0) {
      const TopLink& l = topo_.links[static_cast<std::size_t>(existing)];
      if (l.carried_bw_bits_per_s + bw <= link_capacity(a, b) + 1e-6) {
        const double p = hop_power_w(a, b, bw, /*opening=*/false);
        choice.link_id = existing;
        choice.cost = opts_.alpha_power * p / p_norm_ +
                      (1.0 - opts_.alpha_power) * lat_term;
        return choice;
      }
      // Saturated: fall through and consider opening a parallel link.
    }

    // Opening a new link requires a free out port on a and in port on b.
    const auto as = static_cast<std::size_t>(a);
    const auto bs = static_cast<std::size_t>(b);
    if (scratch_.ports_out[as] + 1 > opts_.max_ports[as]) return choice;
    if (scratch_.ports_in[bs] + 1 > opts_.max_ports[bs]) return choice;
    if (bw > link_capacity(a, b) + 1e-6) return choice;
    if (opts_.enforce_wire_timing && !crossing(a, b)) {
      if (hop_length_mm(a, b) > scratch_.max_wire_len[as]) return choice;
    }
    const double p = hop_power_w(a, b, bw, /*opening=*/true);
    choice.link_id = -1;
    choice.cost =
        opts_.alpha_power * p / p_norm_ + (1.0 - opts_.alpha_power) * lat_term;
    return choice;
  }

  bool route_flow(std::size_t flow_idx, RouteOutcome& outcome) {
    const soc::Flow& flow = spec_.flows[flow_idx];
    const int s_sw = topo_.switch_of_core[static_cast<std::size_t>(flow.src)];
    const int d_sw = topo_.switch_of_core[static_cast<std::size_t>(flow.dst)];
    FlowRoute& route = topo_.routes[flow_idx];
    route.src_switch = s_sw;
    route.dst_switch = d_sw;
    if (s_sw == d_sw) {
      route.latency_cycles = route_latency_cycles(topo_, route, opts_.tech);
      return true;
    }

    // Dijkstra over the flow's ADMISSIBLE switches only: the shutdown-safety
    // rule confines a flow to its source island, destination island and the
    // intermediate VI, so other islands' switches can never be relaxed or
    // extracted (distance stays infinite) — skipping them entirely is exact
    // and cuts the dense O(S^2) scan by the island count. The subset is
    // collected in ascending index order, preserving the dense scan's
    // lowest-index tie-break.
    const std::size_t n = n_;
    std::vector<int>& nodes = scratch_.nodes;
    nodes.clear();
    const soc::IslandId src_isl =
        spec_.cores[static_cast<std::size_t>(flow.src)].island;
    const soc::IslandId dst_isl =
        spec_.cores[static_cast<std::size_t>(flow.dst)].island;
    if (contiguous_) {
      const std::size_t n_islands = spec_.islands.size();
      auto push_range = [this, &nodes](std::size_t slot) {
        for (int s = island_begin_[slot]; s < island_end_[slot]; ++s) {
          nodes.push_back(s);
        }
      };
      if (src_isl == dst_isl) {
        push_range(static_cast<std::size_t>(src_isl));
      } else {
        const auto lo = static_cast<std::size_t>(std::min(src_isl, dst_isl));
        const auto hi = static_cast<std::size_t>(std::max(src_isl, dst_isl));
        push_range(lo);
        push_range(hi);
        push_range(n_islands);  // intermediate VI switches sit at the end
      }
    } else {
      for (std::size_t s = 0; s < n; ++s) nodes.push_back(static_cast<int>(s));
    }

    scratch_.dist.assign(n, kInf);
    scratch_.pred.assign(n, -1);
    scratch_.pred_link.assign(n, -1);
    scratch_.done.assign(n, 0);
    std::vector<double>& dist = scratch_.dist;
    std::vector<int>& pred = scratch_.pred;
    std::vector<int>& pred_link = scratch_.pred_link;
    std::vector<char>& done = scratch_.done;
    dist[static_cast<std::size_t>(s_sw)] = 0.0;
    for (std::size_t iter = 0; iter < nodes.size(); ++iter) {
      int u = -1;
      double best = kInf;
      for (const int v : nodes) {
        const auto vs = static_cast<std::size_t>(v);
        if (!done[vs] && dist[vs] < best) {
          best = dist[vs];
          u = v;
        }
      }
      if (u < 0) break;
      done[static_cast<std::size_t>(u)] = 1;
      if (u == d_sw) break;
      const double dist_u = dist[static_cast<std::size_t>(u)];
      for (const int v : nodes) {
        const auto vs = static_cast<std::size_t>(v);
        if (done[vs] || v == u) continue;
        const EdgeChoice ec = edge_choice(u, v, flow);
        if (!std::isfinite(ec.cost)) continue;
        if (dist_u + ec.cost < dist[vs]) {
          dist[vs] = dist_u + ec.cost;
          pred[vs] = u;
          pred_link[vs] = ec.link_id;
        }
      }
    }
    if (!std::isfinite(dist[static_cast<std::size_t>(d_sw)])) {
      outcome.failure_reason =
          "no admissible path for flow '" + flow.label + "'";
      outcome.failed_flow = static_cast<int>(flow_idx);
      return false;
    }

    // Materialize the path, opening links as needed.
    std::vector<int>& rev_nodes = scratch_.path;
    rev_nodes.clear();
    for (int v = d_sw; v != s_sw; v = pred[static_cast<std::size_t>(v)]) {
      rev_nodes.push_back(v);
    }
    std::reverse(rev_nodes.begin(), rev_nodes.end());
    int prev = s_sw;
    for (const int v : rev_nodes) {
      // An earlier hop of this same path may have opened a link or consumed
      // ports, but hops of one shortest path touch distinct switches, so the
      // cached choice stays valid.
      int link_id = pred_link[static_cast<std::size_t>(v)];
      if (link_id < 0) {
        link_id = open_link(prev, v);
      }
      TopLink& l = topo_.links[static_cast<std::size_t>(link_id)];
      l.carried_bw_bits_per_s += flow.bandwidth_bits_per_s;
      l.flows.push_back(static_cast<int>(flow_idx));
      route.links.push_back(link_id);
      if (power_lb_ >= 0.0) {
        accumulate_power_lb(prev, v, l, flow.bandwidth_bits_per_s,
                            /*pass_through=*/v != d_sw);
      }
      prev = v;
    }
    route.crossings = 0;
    for (const int l : route.links) {
      if (topo_.links[static_cast<std::size_t>(l)].crosses_island) ++route.crossings;
    }
    route.latency_cycles = route_latency_cycles(topo_, route, opts_.tech);
    if (route.latency_cycles > flow.max_latency_cycles + 1e-9) {
      outcome.failure_reason = "latency violated for flow '" + flow.label +
                               "' (" + std::to_string(route.latency_cycles) +
                               " > " + std::to_string(flow.max_latency_cycles) + ")";
      outcome.failed_flow = static_cast<int>(flow_idx);
      outcome.latency_violation = true;
      return false;
    }
    return true;
  }

  /// Adds the sound, refine-stable part of this bandwidth increment to the
  /// running power lower bound: FIFO energy on crossings (bandwidth-only),
  /// wire energy only when neither endpoint is an intermediate switch
  /// (position refinement moves intermediate switches, so those wire lengths
  /// may still change; island switches never move), and the downstream
  /// switch's traffic energy at its core-only port floor when the hop makes
  /// the flow VISIT a switch its endpoint floor did not count.
  void accumulate_power_lb(int a, int b, const TopLink& l, double bw,
                           bool pass_through) {
    const soc::IslandId a_isl = island_of_switch(topo_, a);
    const soc::IslandId b_isl = island_of_switch(topo_, b);
    if (a_isl != b_isl) power_lb_ += fifo_w_per_bw_ * bw;
    if (a_isl != kIntermediateIsland && b_isl != kIntermediateIsland) {
      power_lb_ += link_w_per_bw_mm_ * l.length_mm * bw;
    }
    if (pass_through && bound_->switch_ebit_floor != nullptr) {
      power_lb_ += (*bound_->switch_ebit_floor)[static_cast<std::size_t>(b)] * bw;
    }
  }

  int open_link(int a, int b) {
    TopLink l;
    l.src_switch = a;
    l.dst_switch = b;
    l.crosses_island = crossing(a, b);
    l.length_mm = hop_length_mm(a, b);
    const int id = static_cast<int>(topo_.links.size());
    topo_.links.push_back(std::move(l));
    scratch_.link_at[static_cast<std::size_t>(a) * n_ +
                     static_cast<std::size_t>(b)] = id;
    ++scratch_.ports_out[static_cast<std::size_t>(a)];
    ++scratch_.ports_in[static_cast<std::size_t>(b)];
    if (power_lb_ >= 0.0) {
      // The two new ports clock forever: their idle power is an exact,
      // monotone addition to the final switch dynamic power.
      power_lb_ += idle_w_per_hz_ * (switch_freq(topo_, a) + switch_freq(topo_, b));
    }
    return id;
  }

  NocTopology& topo_;
  const soc::SocSpec& spec_;
  const RouterOptions& opts_;
  RouterScratch& scratch_;
  const RouteBound* bound_ = nullptr;
  models::SwitchModel sw_model_;
  models::LinkModel link_model_;
  models::BisyncFifoModel fifo_model_;
  std::size_t n_ = 0;
  double p_norm_ = 1.0;
  // Admissible-subset iteration (see route_flow).
  std::vector<int> island_begin_;
  std::vector<int> island_end_;
  bool contiguous_ = false;
  // Cached model coefficients (see constructor).
  double link_dyn_c_ = 0.0;
  double link_leak_c_ = 0.0;
  double fifo_dyn_c_ = 0.0;
  double fifo_leak_w_ = 0.0;
  // Pruning state; power_lb_ < 0 means pruning disabled for this pass.
  double power_lb_ = -1.0;
  double lat_sum_lb_ = 0.0;
  double fifo_w_per_bw_ = 0.0;
  double link_w_per_bw_mm_ = 0.0;
  double idle_w_per_hz_ = 0.0;
};

}  // namespace

RouteOutcome route_all_flows(NocTopology& topo, const soc::SocSpec& spec,
                             const RouterOptions& options, RouterScratch* scratch,
                             const RouteBound* bound) {
  if (options.max_ports.size() != topo.switches.size()) {
    RouteOutcome out;
    out.failure_reason = "RouterOptions::max_ports size mismatch";
    return out;
  }
  RouterScratch local;
  RouterScratch& sc = scratch != nullptr ? *scratch : local;

  bool has_intermediate = false;
  for (const SwitchInst& s : topo.switches) {
    if (s.island == kIntermediateIsland) has_intermediate = true;
  }
  // Mid-routing pruning is only sound when the fallback pass cannot change
  // the outcome: a pass-1 abandonment would otherwise hide the pass-2 design
  // the unpruned path could still have produced. (The pre-routing base bound
  // covers both passes and is checked by the evaluation stage.)
  const bool fallback_possible = has_intermediate && !options.forbid_direct_cross;
  const RouteBound* pass1_bound = fallback_possible ? nullptr : bound;

  if (fallback_possible) {
    sc.fallback = topo;  // pristine copy for the retry pass (capacity reused)
  }
  RouteOutcome first;
  {
    Router router(topo, spec, options, sc, pass1_bound);
    first = router.run();
    if (first.success || first.pruned || options.forbid_direct_cross) {
      return first;
    }
  }
  if (!fallback_possible) return first;
  // Greedy pass stranded a flow. An intermediate switch exists, so retry
  // with all cross-island traffic concentrated through the NoC VI (far
  // fewer ports consumed on the island switches).
  topo = sc.fallback;
  RouterOptions retry = options;
  retry.forbid_direct_cross = true;
  Router router(topo, spec, retry, sc, bound);
  RouteOutcome second = router.run();
  if (!second.success && !second.pruned) {
    // Report the greedy pass's diagnosis; it is usually more informative.
    second.failure_reason = first.failure_reason;
    second.failed_flow = first.failed_flow;
    second.latency_violation = first.latency_violation;
  }
  return second;
}

}  // namespace vinoc::core

#include "vinoc/core/synthesis.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>

#include "vinoc/core/candidates.hpp"
#include "vinoc/core/pareto.hpp"
#include "vinoc/core/prune.hpp"
#include "vinoc/exec/parallel_for.hpp"

namespace vinoc::core {

const DesignPoint& SynthesisResult::best_power() const {
  if (points.empty()) throw std::logic_error("SynthesisResult: no design points");
  return *std::min_element(points.begin(), points.end(),
                           [](const DesignPoint& a, const DesignPoint& b) {
                             return a.metrics.noc_dynamic_w < b.metrics.noc_dynamic_w;
                           });
}

const DesignPoint& SynthesisResult::best_latency() const {
  if (points.empty()) throw std::logic_error("SynthesisResult: no design points");
  return *std::min_element(points.begin(), points.end(),
                           [](const DesignPoint& a, const DesignPoint& b) {
                             return a.metrics.avg_latency_cycles <
                                    b.metrics.avg_latency_cycles;
                           });
}

SynthesisResult synthesize(const soc::SocSpec& spec,
                           const SynthesisOptions& options) {
  exec::ThreadPool pool(options.threads);
  return synthesize(spec, options, pool);
}

SynthesisResult synthesize(const soc::SocSpec& spec, const SynthesisOptions& options,
                           exec::ThreadPool& pool) {
  EvalScratchPool scratch;
  return synthesize(spec, options, pool, scratch);
}

SynthesisResult synthesize(const soc::SocSpec& spec, const SynthesisOptions& options,
                           exec::ThreadPool& pool, EvalScratchPool& scratch_pool) {
  const auto t0 = std::chrono::steady_clock::now();
  {
    const auto problems = spec.validate();
    if (!problems.empty()) {
      throw std::invalid_argument("synthesize: invalid SocSpec: " + problems.front());
    }
  }
  if (options.alpha < 0.0 || options.alpha > 1.0 || options.alpha_power < 0.0 ||
      options.alpha_power > 1.0) {
    throw std::invalid_argument("synthesize: alpha weights must be in [0,1]");
  }

  SynthesisResult result;
  result.floorplan = floorplan::Floorplan::build(spec, options.floorplan);
  result.island_params =
      derive_island_params(spec, options.tech, options.link_width_bits,
                           options.port_reserve);
  for (const IslandNocParams& p : result.island_params) {
    if (p.core_count > 0 && p.max_sw_size == 0) {
      throw InfeasibleWidthError(
          "synthesize: an NI link exceeds attainable bandwidth; widen links");
    }
  }
  result.intermediate_params =
      derive_intermediate_params(result.island_params, options.tech);

  // Stage 1 — enumeration (pure, sequential): the (outer x inner) sweep as
  // a flat candidate list, plus every min-cut partition it will need.
  const std::vector<CandidateConfig> candidates =
      enumerate_candidates(spec, result.island_params, options);
  const PartitionTable partitions = compute_partitions(
      spec, options, result.island_params, candidates, pool);
  const std::vector<double> traffic = compute_core_traffic(spec);

  // Candidate-invariant hot-path inputs, computed once per run: the
  // bandwidth-descending flow order every routing call follows, and the
  // spec-only floor of the pruning power bound.
  const std::vector<std::size_t> flow_order = bandwidth_descending_order(spec);
  const double ni_base =
      options.prune ? compute_ni_dynamic_base_w(spec, options.tech) : 0.0;

  // Stage 2 — evaluation (pure, thread-safe): candidates fan out over the
  // pool; each produces a CandidateOutcome value independently. Workers
  // publish finished points into the shared bound and prune against a
  // per-candidate snapshot of it.
  const EvalContext ctx{spec,
                        result.floorplan,
                        result.island_params,
                        result.intermediate_params,
                        partitions,
                        traffic,
                        options,
                        &flow_order,
                        ni_base};
  SharedParetoBound shared_bound;
  // With pruning on, workers whose snapshot is still empty evaluate against
  // this empty bound instead of a null one, so the checkpoint lower bounds
  // the merge re-checks below are recorded for EVERY candidate.
  const ParetoBound empty_bound;
  std::mutex progress_mutex;
  std::size_t progress_done = 0;
  std::vector<CandidateOutcome> outcomes =
      exec::parallel_map<CandidateOutcome>(pool, candidates.size(), [&](std::size_t i) {
        EvalScratch& scratch = scratch_pool.local();
        std::shared_ptr<const ParetoBound> snap;
        const ParetoBound* bound = nullptr;
        if (options.prune) {
          snap = shared_bound.snapshot();
          bound = snap != nullptr ? snap.get() : &empty_bound;
        }
        CandidateOutcome out = evaluate_candidate(ctx, candidates[i], &scratch, bound);
        if (options.prune && out.status == EvalStatus::kRouted && out.deadlock_free) {
          shared_bound.publish(out.point.metrics.noc_dynamic_w,
                               out.point.metrics.avg_latency_cycles);
        }
        if (options.on_progress) {
          const std::lock_guard<std::mutex> lock(progress_mutex);
          ++progress_done;
          options.on_progress(
              {progress_done, candidates.size(), options.link_width_bits});
        }
        return out;
      });

  // Merge — strictly in enumeration order, so duplicate suppression, the
  // stats counters and the saved-point list are independent of how the
  // evaluations were scheduled (bit-identical to a sequential run).
  //
  // Every outcome evaluated with a bound carries the monotone lower bounds
  // of its LAST checkpoint (abort point when pruned, end of evaluation when
  // routed), and the bound trajectory does not depend on which front was
  // consulted. A concurrent snapshot can diverge from the sequential front
  // in both directions, and the merge reconciles both exactly:
  //
  //  * kPruned under a snapshot that was AHEAD (contains later-enumerated
  //    points): if the merge front does not dominate the recorded bounds,
  //    the sequential run would have kept evaluating — REPLAY against the
  //    merge front (deterministic mode). When it does dominate them,
  //    monotonicity guarantees the sequential run pruned too.
  //  * kRouted under a snapshot that was BEHIND (stale/empty): if the merge
  //    front dominates the recorded last-checkpoint bounds, the sequential
  //    run would have pruned at that checkpoint at the latest — count it
  //    pruned (no replay needed: a pruned candidate contributes nothing
  //    else). A sequential run never trips this (its snapshot dominance-
  //    equals the merge front), so it costs nothing when threads == 1.
  ParetoBound merge_bound;
  std::set<std::vector<int>> seen_designs;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    CandidateOutcome& out = outcomes[i];
    ++result.stats.configs_explored;
    if (out.status == EvalStatus::kPruned && options.deterministic_prune &&
        !merge_bound.dominated(out.pruned_power_lb_w,
                               out.pruned_latency_lb_cycles)) {
      out = evaluate_candidate(ctx, candidates[i], &scratch_pool.local(),
                               &merge_bound);
    }
    if (options.prune && out.status == EvalStatus::kRouted &&
        merge_bound.dominated(out.pruned_power_lb_w,
                              out.pruned_latency_lb_cycles)) {
      out.status = EvalStatus::kPruned;
    }
    if (out.status == EvalStatus::kPruned) {
      ++result.stats.rejected_pruned;
      continue;
    }
    if (out.status != EvalStatus::kRouted) {
      if (out.status == EvalStatus::kRejectedLatency) {
        ++result.stats.rejected_latency;
      } else {
        ++result.stats.rejected_unroutable;
      }
      continue;
    }
    ++result.stats.configs_routed;
    if (!seen_designs.insert(std::move(out.signature)).second) {
      ++result.stats.rejected_duplicate;
      continue;
    }
    if (!out.deadlock_free) {
      ++result.stats.rejected_deadlock;
      continue;
    }
    ++result.stats.configs_saved;
    if (options.prune) {
      merge_bound.insert(out.point.metrics.noc_dynamic_w,
                         out.point.metrics.avg_latency_cycles);
    }
    result.points.push_back(std::move(out.point));
  }

  // Pareto front over (dynamic power, average latency), ascending power.
  std::vector<std::size_t> order(result.points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  result.pareto = pareto_front(std::move(order), [&result](std::size_t idx) -> const Metrics& {
    return result.points[idx].metrics;
  });

  result.stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace vinoc::core

#include "vinoc/core/synthesis.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "vinoc/core/candidates.hpp"
#include "vinoc/core/pareto.hpp"
#include "vinoc/core/prune.hpp"
#include "vinoc/exec/ordered_drain.hpp"
#include "vinoc/exec/parallel_for.hpp"
#include "vinoc/obs/profile.hpp"
#include "vinoc/obs/registry.hpp"
#include "vinoc/obs/trace.hpp"

namespace vinoc::core {

const DesignPoint& SynthesisResult::best_power() const {
  if (points.empty()) throw std::logic_error("SynthesisResult: no design points");
  return *std::min_element(points.begin(), points.end(),
                           [](const DesignPoint& a, const DesignPoint& b) {
                             return a.metrics.noc_dynamic_w < b.metrics.noc_dynamic_w;
                           });
}

const DesignPoint& SynthesisResult::best_latency() const {
  if (points.empty()) throw std::logic_error("SynthesisResult: no design points");
  return *std::min_element(points.begin(), points.end(),
                           [](const DesignPoint& a, const DesignPoint& b) {
                             return a.metrics.avg_latency_cycles <
                                    b.metrics.avg_latency_cycles;
                           });
}

SynthesisResult synthesize(const soc::SocSpec& spec,
                           const SynthesisOptions& options) {
  exec::ThreadPool pool(options.threads);
  return synthesize(spec, options, pool);
}

SynthesisResult synthesize(const soc::SocSpec& spec, const SynthesisOptions& options,
                           exec::ThreadPool& pool) {
  EvalScratchPool scratch;
  return synthesize(spec, options, pool, scratch);
}

SynthesisResult synthesize(const soc::SocSpec& spec, const SynthesisOptions& options,
                           exec::ThreadPool& pool, EvalScratchPool& scratch_pool) {
  OBS_SPAN("synthesize");
  const auto t0 = std::chrono::steady_clock::now();
  {
    const auto problems = spec.validate();
    if (!problems.empty()) {
      throw std::invalid_argument("synthesize: invalid SocSpec: " + problems.front());
    }
  }
  if (options.alpha < 0.0 || options.alpha > 1.0 || options.alpha_power < 0.0 ||
      options.alpha_power > 1.0) {
    throw std::invalid_argument("synthesize: alpha weights must be in [0,1]");
  }
  if (options.cancel != nullptr) options.cancel->check("synthesize");

  SynthesisResult result;
  {
    OBS_SPAN("floorplan");
    const obs::PhaseScope phase(obs::Phase::kFloorplan);
    result.floorplan = floorplan::Floorplan::build(spec, options.floorplan);
  }
  result.island_params =
      derive_island_params(spec, options.tech, options.link_width_bits,
                           options.port_reserve);
  for (const IslandNocParams& p : result.island_params) {
    if (p.core_count > 0 && p.max_sw_size == 0) {
      throw InfeasibleWidthError(
          "synthesize: an NI link exceeds attainable bandwidth; widen links");
    }
  }
  result.intermediate_params =
      derive_intermediate_params(result.island_params, options.tech);

  // Stage 1 — enumeration (pure, sequential): the (outer x inner) sweep as
  // a flat candidate list, plus every min-cut partition it will need.
  const std::vector<CandidateConfig> candidates = [&] {
    OBS_SPAN("enumerate_candidates");
    return enumerate_candidates(spec, result.island_params, options);
  }();
  const PartitionTable partitions = [&] {
    // Phase attribution happens inside compute_partitions' per-item lambda
    // (worker-side CPU time); this span is the caller's wall-clock bracket.
    OBS_SPAN("compute_partitions");
    return compute_partitions(spec, options, result.island_params, candidates,
                              pool);
  }();
  const std::vector<double> traffic = compute_core_traffic(spec);

  // Candidate-invariant hot-path inputs, computed once per run: the
  // bandwidth-descending flow order every routing call follows, and the
  // spec-only floor of the pruning power bound.
  const std::vector<std::size_t> flow_order = bandwidth_descending_order(spec);
  const double ni_base =
      options.prune ? compute_ni_dynamic_base_w(spec, options.tech) : 0.0;

  // Stage 2 — evaluation (pure, thread-safe): candidates fan out over the
  // pool; each produces a CandidateOutcome value independently. Workers
  // publish finished points into the shared bound and prune against a
  // per-candidate snapshot of it.
  const EvalContext ctx{spec,
                        result.floorplan,
                        result.island_params,
                        result.intermediate_params,
                        partitions,
                        traffic,
                        options,
                        &flow_order,
                        ni_base};
  SharedParetoBound shared_bound;
  // With pruning on, workers whose snapshot is still empty evaluate against
  // this empty bound instead of a null one, so the checkpoint lower bounds
  // the merge re-checks below are recorded for EVERY candidate.
  const ParetoBound empty_bound;
  std::mutex progress_mutex;
  std::size_t progress_done = 0;

  // Delta-evaluation group map: consecutive candidates sharing
  // switches_per_island form a GROUP (the inner k_int sweep); the group's
  // first candidate (k_int == 0) is its reference. The reference evaluation
  // records its routed hop sequences; once published, later group members
  // replay the routes of flows the k_int diff cannot affect (see
  // route_all_flows). Publication is opportunistic — a member that runs
  // before its reference finishes simply evaluates solo — so results stay
  // bit-identical for every thread schedule, and threads == 1 always
  // replays (the reference precedes its members in enumeration order).
  const bool delta_on = options.delta_eval;
  std::vector<int> group_of(candidates.size(), 0);
  std::vector<char> group_leader(candidates.size(), 0);
  int n_groups = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (i == 0 || candidates[i].switches_per_island !=
                      candidates[i - 1].switches_per_island) {
      group_leader[i] = 1;
      ++n_groups;
    }
    group_of[i] = n_groups - 1;
  }
  std::vector<int> group_size(static_cast<std::size_t>(n_groups), 0);
  for (std::size_t i = 0; i < candidates.size(); ++i) ++group_size[group_of[i]];
  std::vector<std::shared_ptr<const DeltaReference>> group_refs(
      static_cast<std::size_t>(n_groups));
  std::mutex delta_mutex;
  // Delta counters accumulate in per-worker obs registry shards and are
  // merged (deterministically — integer sums) into SynthesisStats after the
  // pool joins. The registry is the source of truth; the stats fields are a
  // derived view.
  obs::ShardedRegistry metrics;

  // STREAMING merge in enumeration order (single definition shared with
  // the width sweep — see OutcomeMerger in candidates.hpp): a finished
  // candidate whose predecessors have all merged is merged immediately and
  // released; only out-of-order completions are buffered, capping peak
  // memory at the scheduling skew instead of the whole candidate list. The
  // replay callback re-evaluates a pruned candidate against the merge front
  // for deterministic pruning.
  OutcomeMerger merger(
      options,
      [&](std::size_t i, const ParetoBound& bound) {
        return evaluate_candidate(ctx, candidates[i], &scratch_pool.local(),
                                  &bound);
      },
      result);
  exec::OrderedDrainQueue<CandidateOutcome> merge_queue(candidates.size());
  int buffered = 0;
  int peak_buffered = 0;  // both only touched under the queue's lock
  exec::parallel_for_each(pool, candidates.size(), [&](std::size_t i) {
    OBS_SPAN("candidate");
    // Cancellation poll, once per candidate: a cancelled run throws here on
    // every remaining index, so the fan-out drains fast and
    // parallel_for_each rethrows the lowest-index CancelledError.
    if (options.cancel != nullptr) options.cancel->check("synthesize");
    EvalScratch& scratch = scratch_pool.local();
    std::shared_ptr<const ParetoBound> snap;
    const ParetoBound* bound = nullptr;
    if (options.prune) {
      snap = shared_bound.snapshot();
      bound = snap != nullptr ? snap.get() : &empty_bound;
    }
    std::shared_ptr<DeltaReference> rec;             // group reference: record
    std::shared_ptr<const DeltaReference> ref;       // group member: replay
    DeltaRouteState* delta = nullptr;
    const int g = delta_on ? group_of[i] : 0;
    if (delta_on) {
      if (group_leader[i]) {
        if (group_size[g] > 1) rec = std::make_shared<DeltaReference>();
      } else {
        {
          const std::lock_guard<std::mutex> lock(delta_mutex);
          ref = group_refs[g];
        }
        if (ref != nullptr) {
          scratch.delta.ref = ref.get();
          delta = &scratch.delta;
        }
      }
    }
    CandidateOutcome out = evaluate_candidate(ctx, candidates[i], &scratch, bound,
                                              rec.get(), delta);
    if (rec != nullptr && rec->valid) {
      const std::lock_guard<std::mutex> lock(delta_mutex);
      group_refs[g] = std::move(rec);
    }
    if (delta != nullptr) {
      scratch.delta.ref = nullptr;  // `ref` dies with this iteration
      if (delta->pnorm_matched) {
        obs::Registry& shard = metrics.local();
        shard.add("delta_candidates", 1);
        shard.add("delta_flows_reused", delta->flows_reused);
        shard.add("delta_flows_certified", delta->flows_certified);
        shard.add("delta_flows_rerouted", delta->flows_rerouted);
        shard.add("delta_cert_rejects", delta->cert_rejects);
      }
    }
    if (options.prune && out.status == EvalStatus::kRouted && out.deadlock_free) {
      shared_bound.publish(out.point.metrics.noc_dynamic_w,
                           out.point.metrics.avg_latency_cycles);
    }
    merge_queue.deposit(
        i, std::move(out),
        [&](CandidateOutcome&& ready_out) { merger.add(std::move(ready_out)); },
        [&](int delta) {
          buffered += delta;
          peak_buffered = std::max(peak_buffered, buffered);
        });
    if (options.on_progress) {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      ++progress_done;
      options.on_progress(
          {progress_done, candidates.size(), options.link_width_bits});
    }
  });
  merger.finish();
  result.stats.peak_buffered_outcomes = peak_buffered;
  const obs::Registry merged = metrics.merged();
  result.stats.delta_candidates = static_cast<int>(merged.value("delta_candidates"));
  result.stats.delta_flows_reused = merged.value("delta_flows_reused");
  result.stats.delta_flows_certified = merged.value("delta_flows_certified");
  result.stats.delta_flows_rerouted = merged.value("delta_flows_rerouted");
  result.stats.delta_cert_rejects =
      static_cast<int>(merged.value("delta_cert_rejects"));

  result.stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace vinoc::core

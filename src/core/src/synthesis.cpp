#include "vinoc/core/synthesis.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "vinoc/core/deadlock.hpp"
#include "vinoc/core/router.hpp"
#include "vinoc/core/vcg.hpp"
#include "vinoc/partition/kway.hpp"

namespace vinoc::core {

namespace {

/// Cores-per-switch assignment of one island for a given switch count,
/// cached across the (i, k_int) sweep.
struct IslandPartition {
  std::vector<std::vector<soc::CoreId>> blocks;  ///< cores per switch
};

class PartitionCache {
 public:
  PartitionCache(const soc::SocSpec& spec, const SynthesisOptions& opts,
                 const std::vector<IslandNocParams>& params)
      : spec_(spec), opts_(opts), params_(params), scaling_(vcg_scaling(spec)) {}

  const IslandPartition& get(soc::IslandId island, int switch_count) {
    const auto key = std::make_pair(island, switch_count);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;

    const auto cores = spec_.cores_in_island(island);
    IslandPartition part;
    part.blocks.resize(static_cast<std::size_t>(switch_count));
    if (!cores.empty()) {
      const graph::Digraph vcg = build_vcg(spec_, island, opts_.alpha, scaling_);
      partition::KwayOptions kopts;
      kopts.blocks = switch_count;
      const int max_size =
          params_[static_cast<std::size_t>(island)].max_sw_size - opts_.port_reserve;
      kopts.max_block_size = static_cast<std::size_t>(std::max(max_size, 1));
      kopts.seed = opts_.partition_seed;
      const partition::PartitionResult res = partition::kway_mincut(vcg, kopts);
      for (std::size_t i = 0; i < cores.size(); ++i) {
        part.blocks[static_cast<std::size_t>(res.block_of[i])].push_back(cores[i]);
      }
    }
    // Drop empty blocks (the partitioner may not use all of them when the
    // island has fewer cores than requested switches).
    part.blocks.erase(std::remove_if(part.blocks.begin(), part.blocks.end(),
                                     [](const auto& b) { return b.empty(); }),
                      part.blocks.end());
    return cache_.emplace(key, std::move(part)).first->second;
  }

 private:
  const soc::SocSpec& spec_;
  const SynthesisOptions& opts_;
  const std::vector<IslandNocParams>& params_;
  VcgScaling scaling_;
  std::map<std::pair<soc::IslandId, int>, IslandPartition> cache_;
};

/// Per-core total traffic, used to weight switch placement.
std::vector<double> core_traffic(const soc::SocSpec& spec) {
  std::vector<double> t(spec.cores.size(), 0.0);
  for (const soc::Flow& f : spec.flows) {
    t[static_cast<std::size_t>(f.src)] += f.bandwidth_bits_per_s;
    t[static_cast<std::size_t>(f.dst)] += f.bandwidth_bits_per_s;
  }
  return t;
}

/// Builds the switch set for one configuration: one switch per partition
/// block at the traffic-weighted centroid of its cores (clamped into the
/// island region), plus `k_int` intermediate switches around the chip centre.
void build_switches(NocTopology& topo, const soc::SocSpec& spec,
                    const floorplan::Floorplan& fp,
                    const std::vector<IslandNocParams>& params,
                    const IslandNocParams& inter_params,
                    const std::vector<const IslandPartition*>& parts, int k_int,
                    const std::vector<double>& traffic) {
  topo = NocTopology{};
  topo.switch_of_core.assign(spec.cores.size(), -1);
  topo.island_freq_hz.resize(spec.islands.size());
  for (std::size_t isl = 0; isl < spec.islands.size(); ++isl) {
    topo.island_freq_hz[isl] = params[isl].freq_hz;
  }
  topo.intermediate_freq_hz = inter_params.freq_hz;

  for (std::size_t isl = 0; isl < spec.islands.size(); ++isl) {
    for (const auto& block : parts[isl]->blocks) {
      SwitchInst sw;
      sw.island = static_cast<soc::IslandId>(isl);
      sw.freq_hz = params[isl].freq_hz;
      std::vector<floorplan::Point> pts;
      std::vector<double> wts;
      for (const soc::CoreId c : block) {
        pts.push_back(fp.core_rect(c).center());
        wts.push_back(traffic[static_cast<std::size_t>(c)]);
      }
      sw.pos = fp.clamp_to_island(floorplan::weighted_centroid(pts, wts),
                                  static_cast<soc::IslandId>(isl));
      sw.cores = block;
      const int sw_id = static_cast<int>(topo.switches.size());
      for (const soc::CoreId c : block) {
        topo.switch_of_core[static_cast<std::size_t>(c)] = sw_id;
      }
      topo.switches.push_back(std::move(sw));
    }
  }

  // Intermediate switches: spread on a small ring around the chip centre so
  // multiple indirect switches do not collapse onto the same point (their
  // positions are refined after routing).
  const floorplan::Point center{fp.chip_width_mm() / 2.0, fp.chip_height_mm() / 2.0};
  const double ring = std::min(fp.chip_width_mm(), fp.chip_height_mm()) / 6.0;
  for (int k = 0; k < k_int; ++k) {
    SwitchInst sw;
    sw.island = kIntermediateIsland;
    sw.freq_hz = inter_params.freq_hz;
    const double angle = 2.0 * 3.14159265358979323846 * k / std::max(k_int, 1);
    sw.pos = fp.clamp_to_island(
        {center.x_mm + ring * std::cos(angle), center.y_mm + ring * std::sin(angle)},
        kIntermediateIsland);
    topo.switches.push_back(std::move(sw));
  }

  // NI attach wires: core centre to its switch.
  topo.ni_wire_mm.resize(spec.cores.size());
  for (std::size_t c = 0; c < spec.cores.size(); ++c) {
    const int sw = topo.switch_of_core[c];
    topo.ni_wire_mm[c] = floorplan::manhattan_mm(
        fp.core_rect(static_cast<soc::CoreId>(c)).center(),
        topo.switches[static_cast<std::size_t>(sw)].pos);
  }
}

/// Moves each intermediate switch to the traffic-weighted centroid of its
/// link partners and refreshes wire lengths (latencies are length-free, so
/// routes stay valid; only the power numbers improve).
void refine_intermediate_positions(NocTopology& topo, const floorplan::Floorplan& fp,
                                   const soc::SocSpec& spec) {
  for (std::size_t s = 0; s < topo.switches.size(); ++s) {
    SwitchInst& sw = topo.switches[s];
    if (sw.island != kIntermediateIsland) continue;
    std::vector<floorplan::Point> pts;
    std::vector<double> wts;
    for (const TopLink& l : topo.links) {
      if (l.src_switch == static_cast<int>(s)) {
        pts.push_back(topo.switches[static_cast<std::size_t>(l.dst_switch)].pos);
        wts.push_back(l.carried_bw_bits_per_s);
      } else if (l.dst_switch == static_cast<int>(s)) {
        pts.push_back(topo.switches[static_cast<std::size_t>(l.src_switch)].pos);
        wts.push_back(l.carried_bw_bits_per_s);
      }
    }
    if (pts.empty()) continue;
    sw.pos = fp.clamp_to_island(floorplan::weighted_centroid(pts, wts),
                                kIntermediateIsland);
  }
  for (TopLink& l : topo.links) {
    l.length_mm = floorplan::manhattan_mm(
        topo.switches[static_cast<std::size_t>(l.src_switch)].pos,
        topo.switches[static_cast<std::size_t>(l.dst_switch)].pos);
  }
  for (std::size_t c = 0; c < spec.cores.size(); ++c) {
    const int sw = topo.switch_of_core[c];
    topo.ni_wire_mm[c] = floorplan::manhattan_mm(
        fp.core_rect(static_cast<soc::CoreId>(c)).center(),
        topo.switches[static_cast<std::size_t>(sw)].pos);
  }
}

bool has_cross_island_flows(const soc::SocSpec& spec) {
  for (const soc::Flow& f : spec.flows) {
    if (spec.cores[static_cast<std::size_t>(f.src)].island !=
        spec.cores[static_cast<std::size_t>(f.dst)].island) {
      return true;
    }
  }
  return false;
}

/// Drops intermediate switches that ended up with no links (the router may
/// need fewer than the sweep offered) and remaps all indices. Returns the
/// number of intermediate switches kept. Designs then deduplicate cleanly
/// across k_int values.
int compact_unused_intermediate(NocTopology& topo) {
  const std::size_t n = topo.switches.size();
  std::vector<bool> used(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    if (topo.switches[s].island != kIntermediateIsland) used[s] = true;
  }
  for (const TopLink& l : topo.links) {
    used[static_cast<std::size_t>(l.src_switch)] = true;
    used[static_cast<std::size_t>(l.dst_switch)] = true;
  }
  std::vector<int> remap(n, -1);
  int next = 0;
  int kept_intermediate = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (!used[s]) continue;
    remap[s] = next++;
    if (topo.switches[s].island == kIntermediateIsland) ++kept_intermediate;
  }
  if (next == static_cast<int>(n)) return kept_intermediate;  // nothing to drop

  std::vector<SwitchInst> switches;
  switches.reserve(static_cast<std::size_t>(next));
  for (std::size_t s = 0; s < n; ++s) {
    if (used[s]) switches.push_back(std::move(topo.switches[s]));
  }
  topo.switches = std::move(switches);
  for (TopLink& l : topo.links) {
    l.src_switch = remap[static_cast<std::size_t>(l.src_switch)];
    l.dst_switch = remap[static_cast<std::size_t>(l.dst_switch)];
  }
  for (int& s : topo.switch_of_core) s = remap[static_cast<std::size_t>(s)];
  for (FlowRoute& r : topo.routes) {
    r.src_switch = remap[static_cast<std::size_t>(r.src_switch)];
    r.dst_switch = remap[static_cast<std::size_t>(r.dst_switch)];
  }
  return kept_intermediate;
}

/// Structural signature for design-point deduplication: per-island switch
/// counts, attachment, and the link list.
std::vector<int> design_signature(const NocTopology& topo) {
  std::vector<int> sig;
  sig.push_back(static_cast<int>(topo.switches.size()));
  for (const int s : topo.switch_of_core) sig.push_back(s);
  for (const TopLink& l : topo.links) {
    sig.push_back(l.src_switch);
    sig.push_back(l.dst_switch);
  }
  return sig;
}

}  // namespace

const DesignPoint& SynthesisResult::best_power() const {
  if (points.empty()) throw std::logic_error("SynthesisResult: no design points");
  return *std::min_element(points.begin(), points.end(),
                           [](const DesignPoint& a, const DesignPoint& b) {
                             return a.metrics.noc_dynamic_w < b.metrics.noc_dynamic_w;
                           });
}

const DesignPoint& SynthesisResult::best_latency() const {
  if (points.empty()) throw std::logic_error("SynthesisResult: no design points");
  return *std::min_element(points.begin(), points.end(),
                           [](const DesignPoint& a, const DesignPoint& b) {
                             return a.metrics.avg_latency_cycles <
                                    b.metrics.avg_latency_cycles;
                           });
}

SynthesisResult synthesize(const soc::SocSpec& spec, const SynthesisOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  {
    const auto problems = spec.validate();
    if (!problems.empty()) {
      throw std::invalid_argument("synthesize: invalid SocSpec: " + problems.front());
    }
  }
  if (options.alpha < 0.0 || options.alpha > 1.0 || options.alpha_power < 0.0 ||
      options.alpha_power > 1.0) {
    throw std::invalid_argument("synthesize: alpha weights must be in [0,1]");
  }

  SynthesisResult result;
  result.floorplan = floorplan::Floorplan::build(spec, options.floorplan);
  result.island_params =
      derive_island_params(spec, options.tech, options.link_width_bits,
                           options.port_reserve);
  for (const IslandNocParams& p : result.island_params) {
    if (p.core_count > 0 && p.max_sw_size == 0) {
      throw std::invalid_argument(
          "synthesize: an NI link exceeds attainable bandwidth; widen links");
    }
  }
  result.intermediate_params =
      derive_intermediate_params(result.island_params, options.tech);

  const std::size_t n_islands = spec.islands.size();
  int max_cores_per_island = 0;
  for (const IslandNocParams& p : result.island_params) {
    max_cores_per_island = std::max(max_cores_per_island, p.core_count);
  }
  const bool cross_flows = has_cross_island_flows(spec);
  const bool use_intermediate = options.allow_intermediate_island && cross_flows;
  const int max_int =
      !use_intermediate ? 0
      : options.max_intermediate_switches >= 0
          ? options.max_intermediate_switches
          : std::max(2, max_cores_per_island);

  PartitionCache partitions(spec, options, result.island_params);
  const std::vector<double> traffic = core_traffic(spec);

  std::set<std::vector<int>> seen_configs;
  std::set<std::vector<int>> seen_designs;
  for (int i = 1; i <= std::max(max_cores_per_island, 1); ++i) {
    // Switch count per island for this iteration (documented deviation:
    // k = min(min_sw + (i-1), |Vj|) so the minimum design is explored).
    std::vector<int> sw_count(n_islands, 0);
    for (std::size_t isl = 0; isl < n_islands; ++isl) {
      const IslandNocParams& p = result.island_params[isl];
      if (p.core_count == 0) continue;
      sw_count[isl] = std::min(p.min_switches + (i - 1), p.core_count);
      sw_count[isl] = std::max(sw_count[isl], 1);
    }
    if (!seen_configs.insert(sw_count).second) continue;  // saturated

    std::vector<const IslandPartition*> parts(n_islands);
    for (std::size_t isl = 0; isl < n_islands; ++isl) {
      parts[isl] = &partitions.get(static_cast<soc::IslandId>(isl), sw_count[isl]);
    }

    for (int k_int = 0; k_int <= max_int; ++k_int) {
      ++result.stats.configs_explored;
      DesignPoint point;
      point.switches_per_island = sw_count;
      point.intermediate_switches = k_int;
      build_switches(point.topology, spec, result.floorplan, result.island_params,
                     result.intermediate_params, parts, k_int, traffic);

      RouterOptions ropts;
      ropts.alpha_power = options.alpha_power;
      ropts.link_width_bits = options.link_width_bits;
      ropts.tech = options.tech;
      ropts.enforce_wire_timing = options.enforce_wire_timing;
      ropts.max_ports.resize(point.topology.switches.size());
      for (std::size_t s = 0; s < point.topology.switches.size(); ++s) {
        const soc::IslandId isl = point.topology.switches[s].island;
        ropts.max_ports[s] =
            isl == kIntermediateIsland
                ? result.intermediate_params.max_sw_size
                : result.island_params[static_cast<std::size_t>(isl)].max_sw_size;
      }

      const RouteOutcome outcome =
          route_all_flows(point.topology, spec, ropts);
      if (!outcome.success) {
        if (outcome.failure_reason.find("latency") != std::string::npos) {
          ++result.stats.rejected_latency;
        } else {
          ++result.stats.rejected_unroutable;
        }
        continue;
      }
      ++result.stats.configs_routed;
      // The router may leave some offered intermediate switches unused;
      // drop them and deduplicate (several k_int values can collapse onto
      // the same effective design).
      point.intermediate_switches = compact_unused_intermediate(point.topology);
      if (!seen_designs.insert(design_signature(point.topology)).second) {
        ++result.stats.rejected_duplicate;
        continue;
      }
      if (options.enforce_deadlock_freedom && !is_deadlock_free(point.topology)) {
        ++result.stats.rejected_deadlock;
        continue;
      }
      refine_intermediate_positions(point.topology, result.floorplan, spec);
      point.metrics = compute_metrics(point.topology, spec, options.tech,
                                      options.link_width_bits);
      ++result.stats.configs_saved;
      result.points.push_back(std::move(point));
    }
  }

  // Pareto front over (dynamic power, average latency), ascending power.
  std::vector<std::size_t> order(result.points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&result](std::size_t a, std::size_t b) {
    const Metrics& ma = result.points[a].metrics;
    const Metrics& mb = result.points[b].metrics;
    if (ma.noc_dynamic_w != mb.noc_dynamic_w) {
      return ma.noc_dynamic_w < mb.noc_dynamic_w;
    }
    return ma.avg_latency_cycles < mb.avg_latency_cycles;
  });
  double best_lat = std::numeric_limits<double>::infinity();
  for (const std::size_t idx : order) {
    const Metrics& m = result.points[idx].metrics;
    if (m.avg_latency_cycles < best_lat - 1e-12) {
      result.pareto.push_back(idx);
      best_lat = m.avg_latency_cycles;
    }
  }

  result.stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace vinoc::core

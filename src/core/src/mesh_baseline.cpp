#include "vinoc/core/mesh_baseline.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "vinoc/core/frequency.hpp"

namespace vinoc::core {

namespace {

struct Slot {
  int row = 0;
  int col = 0;
};

int hops(const Slot& a, const Slot& b) {
  return std::abs(a.row - b.row) + std::abs(a.col - b.col);
}

}  // namespace

MeshResult synthesize_mesh_baseline(const soc::SocSpec& spec,
                                    const MeshOptions& options) {
  MeshResult result;
  if (spec.islands.size() != 1) {
    result.failure_reason =
        "mesh baseline expects a single-island spec (pass the 1-island variant)";
    return result;
  }
  const std::size_t n = spec.cores.size();
  if (n == 0) {
    result.failure_reason = "no cores";
    return result;
  }

  // Grid dimensions, near square.
  const int cols = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
  const int rows = static_cast<int>(
      std::ceil(static_cast<double>(n) / static_cast<double>(cols)));
  result.rows = rows;
  result.cols = cols;
  const int n_slots = rows * cols;

  // Uniform mesh clock: the hungriest NI link anywhere sets it (the whole
  // fabric is one synchronous domain).
  const std::vector<IslandNocParams> params =
      derive_island_params(spec, options.tech, options.link_width_bits);
  if (params[0].max_sw_size == 0) {
    result.failure_reason = "an NI link exceeds attainable bandwidth; widen links";
    return result;
  }
  const double freq = params[0].freq_hz;

  // Chip outline and slot pitch.
  double chip_w = options.chip_w_mm;
  double chip_h = options.chip_h_mm;
  if (chip_w <= 0.0 || chip_h <= 0.0) {
    const double side = std::sqrt(spec.total_core_area_mm2() * 1.2);
    chip_w = side;
    chip_h = side;
  }
  const double pitch_x = chip_w / cols;
  const double pitch_y = chip_h / rows;

  // --- Core-to-slot mapping: heaviest communicator to the centre, then
  // greedily the slot minimizing bandwidth-weighted hops to placed peers.
  std::vector<double> traffic(n, 0.0);
  std::vector<std::vector<double>> bw(n, std::vector<double>(n, 0.0));
  for (const soc::Flow& f : spec.flows) {
    const auto s = static_cast<std::size_t>(f.src);
    const auto d = static_cast<std::size_t>(f.dst);
    traffic[s] += f.bandwidth_bits_per_s;
    traffic[d] += f.bandwidth_bits_per_s;
    bw[s][d] += f.bandwidth_bits_per_s;
    bw[d][s] += f.bandwidth_bits_per_s;
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&traffic](std::size_t a, std::size_t b) {
    return traffic[a] > traffic[b];
  });

  std::vector<Slot> slot_of_core(n);
  std::vector<bool> slot_used(static_cast<std::size_t>(n_slots), false);
  auto slot_at = [cols](int idx) { return Slot{idx / cols, idx % cols}; };
  const Slot center{rows / 2, cols / 2};

  for (std::size_t k = 0; k < order.size(); ++k) {
    const std::size_t core = order[k];
    int best_slot = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int s = 0; s < n_slots; ++s) {
      if (slot_used[static_cast<std::size_t>(s)]) continue;
      const Slot sl = slot_at(s);
      double cost = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t placed = order[j];
        if (bw[core][placed] > 0.0) {
          cost += bw[core][placed] * hops(sl, slot_of_core[placed]);
        }
      }
      // Tie-break (and the first core's criterion): stay central.
      cost += 1e-3 * hops(sl, center);
      if (cost < best_cost) {
        best_cost = cost;
        best_slot = s;
      }
    }
    slot_used[static_cast<std::size_t>(best_slot)] = true;
    slot_of_core[core] = slot_at(best_slot);
  }

  // --- Topology: all R*C switches, all mesh links.
  NocTopology& topo = result.topology;
  topo.island_freq_hz = {freq};
  topo.intermediate_freq_hz = freq;
  topo.switches.resize(static_cast<std::size_t>(n_slots));
  for (int s = 0; s < n_slots; ++s) {
    const Slot sl = slot_at(s);
    SwitchInst& sw = topo.switches[static_cast<std::size_t>(s)];
    sw.island = 0;
    sw.freq_hz = freq;
    sw.pos = {(sl.col + 0.5) * pitch_x, (sl.row + 0.5) * pitch_y};
  }
  topo.switch_of_core.resize(n);
  topo.ni_wire_mm.assign(n, (pitch_x + pitch_y) / 4.0);
  for (std::size_t c = 0; c < n; ++c) {
    const Slot sl = slot_of_core[c];
    const int s = sl.row * cols + sl.col;
    topo.switch_of_core[c] = s;
    topo.switches[static_cast<std::size_t>(s)].cores.push_back(
        static_cast<soc::CoreId>(c));
  }

  // link_id[a][b] for adjacent switches a -> b.
  std::vector<std::vector<int>> link_id(static_cast<std::size_t>(n_slots),
                                        std::vector<int>(static_cast<std::size_t>(n_slots), -1));
  auto add_mesh_link = [&](int a, int b, double len) {
    TopLink l;
    l.src_switch = a;
    l.dst_switch = b;
    l.length_mm = len;
    link_id[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
        static_cast<int>(topo.links.size());
    topo.links.push_back(std::move(l));
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int s = r * cols + c;
      if (c + 1 < cols) {
        add_mesh_link(s, s + 1, pitch_x);
        add_mesh_link(s + 1, s, pitch_x);
      }
      if (r + 1 < rows) {
        add_mesh_link(s, s + cols, pitch_y);
        add_mesh_link(s + cols, s, pitch_y);
      }
    }
  }

  // --- XY routing.
  topo.routes.resize(spec.flows.size());
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    const soc::Flow& flow = spec.flows[f];
    FlowRoute& route = topo.routes[f];
    route.src_switch = topo.switch_of_core[static_cast<std::size_t>(flow.src)];
    route.dst_switch = topo.switch_of_core[static_cast<std::size_t>(flow.dst)];
    Slot cur = slot_of_core[static_cast<std::size_t>(flow.src)];
    const Slot dst = slot_of_core[static_cast<std::size_t>(flow.dst)];
    auto take = [&](const Slot& next) {
      const int a = cur.row * cols + cur.col;
      const int b = next.row * cols + next.col;
      const int l = link_id[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
      topo.links[static_cast<std::size_t>(l)].carried_bw_bits_per_s +=
          flow.bandwidth_bits_per_s;
      topo.links[static_cast<std::size_t>(l)].flows.push_back(static_cast<int>(f));
      route.links.push_back(l);
      cur = next;
    };
    while (cur.col != dst.col) {
      take(Slot{cur.row, cur.col + (dst.col > cur.col ? 1 : -1)});
    }
    while (cur.row != dst.row) {
      take(Slot{cur.row + (dst.row > cur.row ? 1 : -1), cur.col});
    }
    route.latency_cycles = route_latency_cycles(topo, route, options.tech);
  }

  result.metrics =
      compute_metrics(topo, spec, options.tech, options.link_width_bits);
  const double capacity = static_cast<double>(options.link_width_bits) * freq;
  for (const TopLink& l : topo.links) {
    result.max_link_utilization =
        std::max(result.max_link_utilization, l.carried_bw_bits_per_s / capacity);
  }
  result.ok = true;
  return result;
}

}  // namespace vinoc::core

#include "vinoc/core/candidates.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "vinoc/core/deadlock.hpp"
#include "vinoc/core/router.hpp"
#include "vinoc/core/vcg.hpp"
#include "vinoc/exec/parallel_for.hpp"
#include "vinoc/partition/kway.hpp"

namespace vinoc::core {

namespace {

bool has_cross_island_flows(const soc::SocSpec& spec) {
  for (const soc::Flow& f : spec.flows) {
    if (spec.cores[static_cast<std::size_t>(f.src)].island !=
        spec.cores[static_cast<std::size_t>(f.dst)].island) {
      return true;
    }
  }
  return false;
}

/// Min-cut partition of one island's VCG into `switch_count` blocks (empty
/// blocks dropped). Deterministic for a fixed options.partition_seed.
IslandPartition partition_island(const soc::SocSpec& spec,
                                 const SynthesisOptions& opts,
                                 const std::vector<IslandNocParams>& params,
                                 const VcgScaling& scaling, soc::IslandId island,
                                 int switch_count) {
  const auto cores = spec.cores_in_island(island);
  IslandPartition part;
  part.blocks.resize(static_cast<std::size_t>(switch_count));
  if (!cores.empty()) {
    const graph::Digraph vcg = build_vcg(spec, island, opts.alpha, scaling);
    partition::KwayOptions kopts;
    kopts.blocks = switch_count;
    const int max_size =
        params[static_cast<std::size_t>(island)].max_sw_size - opts.port_reserve;
    kopts.max_block_size = static_cast<std::size_t>(std::max(max_size, 1));
    kopts.seed = opts.partition_seed;
    const partition::PartitionResult res = partition::kway_mincut(vcg, kopts);
    for (std::size_t i = 0; i < cores.size(); ++i) {
      part.blocks[static_cast<std::size_t>(res.block_of[i])].push_back(cores[i]);
    }
  }
  // Drop empty blocks (the partitioner may not use all of them when the
  // island has fewer cores than requested switches).
  part.blocks.erase(std::remove_if(part.blocks.begin(), part.blocks.end(),
                                   [](const auto& b) { return b.empty(); }),
                    part.blocks.end());
  return part;
}

/// Builds the switch set for one configuration: one switch per partition
/// block at the traffic-weighted centroid of its cores (clamped into the
/// island region), plus `k_int` intermediate switches around the chip centre.
void build_switches(NocTopology& topo, const EvalContext& ctx,
                    const std::vector<const IslandPartition*>& parts, int k_int) {
  const soc::SocSpec& spec = ctx.spec;
  const floorplan::Floorplan& fp = ctx.floorplan;
  topo = NocTopology{};
  topo.switch_of_core.assign(spec.cores.size(), -1);
  topo.island_freq_hz.resize(spec.islands.size());
  for (std::size_t isl = 0; isl < spec.islands.size(); ++isl) {
    topo.island_freq_hz[isl] = ctx.island_params[isl].freq_hz;
  }
  topo.intermediate_freq_hz = ctx.intermediate_params.freq_hz;

  for (std::size_t isl = 0; isl < spec.islands.size(); ++isl) {
    for (const auto& block : parts[isl]->blocks) {
      SwitchInst sw;
      sw.island = static_cast<soc::IslandId>(isl);
      sw.freq_hz = ctx.island_params[isl].freq_hz;
      std::vector<floorplan::Point> pts;
      std::vector<double> wts;
      for (const soc::CoreId c : block) {
        pts.push_back(fp.core_rect(c).center());
        wts.push_back(ctx.core_traffic[static_cast<std::size_t>(c)]);
      }
      sw.pos = fp.clamp_to_island(floorplan::weighted_centroid(pts, wts),
                                  static_cast<soc::IslandId>(isl));
      sw.cores = block;
      const int sw_id = static_cast<int>(topo.switches.size());
      for (const soc::CoreId c : block) {
        topo.switch_of_core[static_cast<std::size_t>(c)] = sw_id;
      }
      topo.switches.push_back(std::move(sw));
    }
  }

  // Intermediate switches: spread on a small ring around the chip centre so
  // multiple indirect switches do not collapse onto the same point (their
  // positions are refined after routing).
  const floorplan::Point center{fp.chip_width_mm() / 2.0, fp.chip_height_mm() / 2.0};
  const double ring = std::min(fp.chip_width_mm(), fp.chip_height_mm()) / 6.0;
  for (int k = 0; k < k_int; ++k) {
    SwitchInst sw;
    sw.island = kIntermediateIsland;
    sw.freq_hz = ctx.intermediate_params.freq_hz;
    const double angle = 2.0 * 3.14159265358979323846 * k / std::max(k_int, 1);
    sw.pos = fp.clamp_to_island(
        {center.x_mm + ring * std::cos(angle), center.y_mm + ring * std::sin(angle)},
        kIntermediateIsland);
    topo.switches.push_back(std::move(sw));
  }

  // NI attach wires: core centre to its switch.
  topo.ni_wire_mm.resize(spec.cores.size());
  for (std::size_t c = 0; c < spec.cores.size(); ++c) {
    const int sw = topo.switch_of_core[c];
    topo.ni_wire_mm[c] = floorplan::manhattan_mm(
        fp.core_rect(static_cast<soc::CoreId>(c)).center(),
        topo.switches[static_cast<std::size_t>(sw)].pos);
  }
}

/// Moves each intermediate switch to the traffic-weighted centroid of its
/// link partners and refreshes wire lengths (latencies are length-free, so
/// routes stay valid; only the power numbers improve).
void refine_intermediate_positions(NocTopology& topo, const floorplan::Floorplan& fp,
                                   const soc::SocSpec& spec) {
  for (std::size_t s = 0; s < topo.switches.size(); ++s) {
    SwitchInst& sw = topo.switches[s];
    if (sw.island != kIntermediateIsland) continue;
    std::vector<floorplan::Point> pts;
    std::vector<double> wts;
    for (const TopLink& l : topo.links) {
      if (l.src_switch == static_cast<int>(s)) {
        pts.push_back(topo.switches[static_cast<std::size_t>(l.dst_switch)].pos);
        wts.push_back(l.carried_bw_bits_per_s);
      } else if (l.dst_switch == static_cast<int>(s)) {
        pts.push_back(topo.switches[static_cast<std::size_t>(l.src_switch)].pos);
        wts.push_back(l.carried_bw_bits_per_s);
      }
    }
    if (pts.empty()) continue;
    sw.pos = fp.clamp_to_island(floorplan::weighted_centroid(pts, wts),
                                kIntermediateIsland);
  }
  for (TopLink& l : topo.links) {
    l.length_mm = floorplan::manhattan_mm(
        topo.switches[static_cast<std::size_t>(l.src_switch)].pos,
        topo.switches[static_cast<std::size_t>(l.dst_switch)].pos);
  }
  for (std::size_t c = 0; c < spec.cores.size(); ++c) {
    const int sw = topo.switch_of_core[c];
    topo.ni_wire_mm[c] = floorplan::manhattan_mm(
        fp.core_rect(static_cast<soc::CoreId>(c)).center(),
        topo.switches[static_cast<std::size_t>(sw)].pos);
  }
}

/// Drops intermediate switches that ended up with no links (the router may
/// need fewer than the sweep offered) and remaps all indices. Returns the
/// number of intermediate switches kept. Designs then deduplicate cleanly
/// across k_int values.
int compact_unused_intermediate(NocTopology& topo) {
  const std::size_t n = topo.switches.size();
  std::vector<bool> used(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    if (topo.switches[s].island != kIntermediateIsland) used[s] = true;
  }
  for (const TopLink& l : topo.links) {
    used[static_cast<std::size_t>(l.src_switch)] = true;
    used[static_cast<std::size_t>(l.dst_switch)] = true;
  }
  std::vector<int> remap(n, -1);
  int next = 0;
  int kept_intermediate = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (!used[s]) continue;
    remap[s] = next++;
    if (topo.switches[s].island == kIntermediateIsland) ++kept_intermediate;
  }
  if (next == static_cast<int>(n)) return kept_intermediate;  // nothing to drop

  std::vector<SwitchInst> switches;
  switches.reserve(static_cast<std::size_t>(next));
  for (std::size_t s = 0; s < n; ++s) {
    if (used[s]) switches.push_back(std::move(topo.switches[s]));
  }
  topo.switches = std::move(switches);
  for (TopLink& l : topo.links) {
    l.src_switch = remap[static_cast<std::size_t>(l.src_switch)];
    l.dst_switch = remap[static_cast<std::size_t>(l.dst_switch)];
  }
  for (int& s : topo.switch_of_core) s = remap[static_cast<std::size_t>(s)];
  for (FlowRoute& r : topo.routes) {
    r.src_switch = remap[static_cast<std::size_t>(r.src_switch)];
    r.dst_switch = remap[static_cast<std::size_t>(r.dst_switch)];
  }
  return kept_intermediate;
}

/// Structural signature for design-point deduplication: per-island switch
/// counts, attachment, and the link list.
std::vector<int> design_signature(const NocTopology& topo) {
  std::vector<int> sig;
  sig.push_back(static_cast<int>(topo.switches.size()));
  for (const int s : topo.switch_of_core) sig.push_back(s);
  for (const TopLink& l : topo.links) {
    sig.push_back(l.src_switch);
    sig.push_back(l.dst_switch);
  }
  return sig;
}

}  // namespace

std::vector<double> compute_core_traffic(const soc::SocSpec& spec) {
  std::vector<double> t(spec.cores.size(), 0.0);
  for (const soc::Flow& f : spec.flows) {
    t[static_cast<std::size_t>(f.src)] += f.bandwidth_bits_per_s;
    t[static_cast<std::size_t>(f.dst)] += f.bandwidth_bits_per_s;
  }
  return t;
}

std::vector<CandidateConfig> enumerate_candidates(
    const soc::SocSpec& spec, const std::vector<IslandNocParams>& island_params,
    const SynthesisOptions& options) {
  const std::size_t n_islands = spec.islands.size();
  int max_cores_per_island = 0;
  for (const IslandNocParams& p : island_params) {
    max_cores_per_island = std::max(max_cores_per_island, p.core_count);
  }
  const bool use_intermediate =
      options.allow_intermediate_island && has_cross_island_flows(spec);
  const int max_int =
      !use_intermediate ? 0
      : options.max_intermediate_switches >= 0
          ? options.max_intermediate_switches
          : std::max(2, max_cores_per_island);

  std::vector<CandidateConfig> candidates;
  std::set<std::vector<int>> seen_configs;
  for (int i = 1; i <= std::max(max_cores_per_island, 1); ++i) {
    // Switch count per island for this iteration (documented deviation:
    // k = min(min_sw + (i-1), |Vj|) so the minimum design is explored).
    std::vector<int> sw_count(n_islands, 0);
    for (std::size_t isl = 0; isl < n_islands; ++isl) {
      const IslandNocParams& p = island_params[isl];
      if (p.core_count == 0) continue;
      sw_count[isl] = std::min(p.min_switches + (i - 1), p.core_count);
      sw_count[isl] = std::max(sw_count[isl], 1);
    }
    if (!seen_configs.insert(sw_count).second) continue;  // saturated

    for (int k_int = 0; k_int <= max_int; ++k_int) {
      CandidateConfig cand;
      cand.switches_per_island = sw_count;
      cand.intermediate_switches = k_int;
      candidates.push_back(std::move(cand));
    }
  }
  return candidates;
}

PartitionTable compute_partitions(
    const soc::SocSpec& spec, const SynthesisOptions& options,
    const std::vector<IslandNocParams>& island_params,
    const std::vector<CandidateConfig>& candidates, exec::ThreadPool& pool) {
  // Collect the distinct (island, switch count) pairs first; the std::map
  // gives them a stable order and pre-creates the slots so the parallel fill
  // below never mutates the map structure concurrently.
  PartitionTable table;
  for (const CandidateConfig& cand : candidates) {
    for (std::size_t isl = 0; isl < cand.switches_per_island.size(); ++isl) {
      table.emplace(
          PartitionKey{static_cast<soc::IslandId>(isl), cand.switches_per_island[isl]},
          IslandPartition{});
    }
  }
  std::vector<PartitionTable::iterator> slots;
  slots.reserve(table.size());
  for (auto it = table.begin(); it != table.end(); ++it) slots.push_back(it);

  const VcgScaling scaling = vcg_scaling(spec);
  exec::parallel_for_each(pool, slots.size(), [&](std::size_t i) {
    const PartitionKey& key = slots[i]->first;
    slots[i]->second =
        partition_island(spec, options, island_params, scaling, key.first, key.second);
  });
  return table;
}

CandidateOutcome evaluate_candidate(const EvalContext& ctx,
                                    const CandidateConfig& cand) {
  CandidateOutcome out;
  out.point.switches_per_island = cand.switches_per_island;
  out.point.intermediate_switches = cand.intermediate_switches;

  std::vector<const IslandPartition*> parts(cand.switches_per_island.size());
  for (std::size_t isl = 0; isl < parts.size(); ++isl) {
    parts[isl] = &ctx.partitions.at(
        PartitionKey{static_cast<soc::IslandId>(isl), cand.switches_per_island[isl]});
  }
  build_switches(out.point.topology, ctx, parts, cand.intermediate_switches);

  RouterOptions ropts;
  ropts.alpha_power = ctx.options.alpha_power;
  ropts.link_width_bits = ctx.options.link_width_bits;
  ropts.tech = ctx.options.tech;
  ropts.enforce_wire_timing = ctx.options.enforce_wire_timing;
  ropts.max_ports.resize(out.point.topology.switches.size());
  for (std::size_t s = 0; s < out.point.topology.switches.size(); ++s) {
    const soc::IslandId isl = out.point.topology.switches[s].island;
    ropts.max_ports[s] =
        isl == kIntermediateIsland
            ? ctx.intermediate_params.max_sw_size
            : ctx.island_params[static_cast<std::size_t>(isl)].max_sw_size;
  }

  const RouteOutcome outcome = route_all_flows(out.point.topology, ctx.spec, ropts);
  if (!outcome.success) {
    out.status = outcome.failure_reason.find("latency") != std::string::npos
                     ? EvalStatus::kRejectedLatency
                     : EvalStatus::kRejectedUnroutable;
    return out;
  }
  out.status = EvalStatus::kRouted;
  // The router may leave some offered intermediate switches unused; drop
  // them so designs deduplicate cleanly across k_int values (several k_int
  // can collapse onto the same effective design).
  out.point.intermediate_switches = compact_unused_intermediate(out.point.topology);
  out.signature = design_signature(out.point.topology);
  out.deadlock_free = !ctx.options.enforce_deadlock_freedom ||
                      is_deadlock_free(out.point.topology);
  if (!out.deadlock_free) return out;  // merge rejects it; skip the metrics
  refine_intermediate_positions(out.point.topology, ctx.floorplan, ctx.spec);
  out.point.metrics = compute_metrics(out.point.topology, ctx.spec,
                                      ctx.options.tech, ctx.options.link_width_bits);
  return out;
}

}  // namespace vinoc::core

#include "vinoc/core/candidates.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>

#include "eval_internal.hpp"
#include "vinoc/core/deadlock.hpp"
#include "vinoc/core/pareto.hpp"
#include "vinoc/core/prune.hpp"
#include "vinoc/core/router.hpp"
#include "vinoc/core/vcg.hpp"
#include "vinoc/exec/parallel_for.hpp"
#include "vinoc/faultinject/faultinject.hpp"
#include "vinoc/obs/profile.hpp"
#include "vinoc/obs/trace.hpp"
#include "vinoc/partition/kway.hpp"

namespace vinoc::core {

namespace {

bool has_cross_island_flows(const soc::SocSpec& spec) {
  for (const soc::Flow& f : spec.flows) {
    if (spec.cores[static_cast<std::size_t>(f.src)].island !=
        spec.cores[static_cast<std::size_t>(f.dst)].island) {
      return true;
    }
  }
  return false;
}

}  // namespace

namespace detail {

IslandPartition partition_island_mincut(const soc::SocSpec& spec,
                                        const SynthesisOptions& opts,
                                        const VcgScaling& scaling,
                                        soc::IslandId island, int switch_count,
                                        int max_sw_size) {
  const auto cores = spec.cores_in_island(island);
  IslandPartition part;
  part.blocks.resize(static_cast<std::size_t>(switch_count));
  if (!cores.empty()) {
    const graph::Digraph vcg = build_vcg(spec, island, opts.alpha, scaling);
    partition::KwayOptions kopts;
    kopts.blocks = switch_count;
    const int max_size = max_sw_size - opts.port_reserve;
    kopts.max_block_size = static_cast<std::size_t>(std::max(max_size, 1));
    kopts.seed = opts.partition_seed;
    const partition::PartitionResult res = partition::kway_mincut(vcg, kopts);
    for (std::size_t i = 0; i < cores.size(); ++i) {
      part.blocks[static_cast<std::size_t>(res.block_of[i])].push_back(cores[i]);
    }
  }
  // Drop empty blocks (the partitioner may not use all of them when the
  // island has fewer cores than requested switches).
  part.blocks.erase(std::remove_if(part.blocks.begin(), part.blocks.end(),
                                   [](const auto& b) { return b.empty(); }),
                    part.blocks.end());
  return part;
}

void build_switches(NocTopology& topo, const EvalContext& ctx,
                    const std::vector<const IslandPartition*>& parts, int k_int,
                    EvalScratch* scratch) {
  const soc::SocSpec& spec = ctx.spec;
  const floorplan::Floorplan& fp = ctx.floorplan;
  topo = NocTopology{};
  topo.switch_of_core.assign(spec.cores.size(), -1);
  topo.island_freq_hz.resize(spec.islands.size());
  for (std::size_t isl = 0; isl < spec.islands.size(); ++isl) {
    topo.island_freq_hz[isl] = ctx.island_params[isl].freq_hz;
  }
  topo.intermediate_freq_hz = ctx.intermediate_params.freq_hz;

  std::vector<floorplan::Point> local_pts;
  std::vector<double> local_wts;
  std::vector<floorplan::Point>& pts =
      scratch != nullptr ? scratch->centroid_pts : local_pts;
  std::vector<double>& wts = scratch != nullptr ? scratch->centroid_wts : local_wts;

  for (std::size_t isl = 0; isl < spec.islands.size(); ++isl) {
    for (const auto& block : parts[isl]->blocks) {
      SwitchInst sw;
      sw.island = static_cast<soc::IslandId>(isl);
      sw.freq_hz = ctx.island_params[isl].freq_hz;
      pts.clear();
      wts.clear();
      for (const soc::CoreId c : block) {
        pts.push_back(fp.core_rect(c).center());
        wts.push_back(ctx.core_traffic[static_cast<std::size_t>(c)]);
      }
      sw.pos = fp.clamp_to_island(floorplan::weighted_centroid(pts, wts),
                                  static_cast<soc::IslandId>(isl));
      sw.cores = block;
      const int sw_id = static_cast<int>(topo.switches.size());
      for (const soc::CoreId c : block) {
        topo.switch_of_core[static_cast<std::size_t>(c)] = sw_id;
      }
      topo.switches.push_back(std::move(sw));
    }
  }

  // Intermediate switches: spread on a small ring around the chip centre so
  // multiple indirect switches do not collapse onto the same point (their
  // positions are refined after routing).
  const floorplan::Point center{fp.chip_width_mm() / 2.0, fp.chip_height_mm() / 2.0};
  const double ring = std::min(fp.chip_width_mm(), fp.chip_height_mm()) / 6.0;
  for (int k = 0; k < k_int; ++k) {
    SwitchInst sw;
    sw.island = kIntermediateIsland;
    sw.freq_hz = ctx.intermediate_params.freq_hz;
    const double angle = 2.0 * 3.14159265358979323846 * k / std::max(k_int, 1);
    sw.pos = fp.clamp_to_island(
        {center.x_mm + ring * std::cos(angle), center.y_mm + ring * std::sin(angle)},
        kIntermediateIsland);
    topo.switches.push_back(std::move(sw));
  }

  // NI attach wires: core centre to its switch.
  topo.ni_wire_mm.resize(spec.cores.size());
  for (std::size_t c = 0; c < spec.cores.size(); ++c) {
    const int sw = topo.switch_of_core[c];
    topo.ni_wire_mm[c] = floorplan::manhattan_mm(
        fp.core_rect(static_cast<soc::CoreId>(c)).center(),
        topo.switches[static_cast<std::size_t>(sw)].pos);
  }
}

void refine_intermediate_positions(NocTopology& topo, const floorplan::Floorplan& fp,
                                   const soc::SocSpec& spec, EvalScratch* scratch) {
  std::vector<floorplan::Point> local_pts;
  std::vector<double> local_wts;
  std::vector<floorplan::Point>& pts =
      scratch != nullptr ? scratch->centroid_pts : local_pts;
  std::vector<double>& wts = scratch != nullptr ? scratch->centroid_wts : local_wts;
  for (std::size_t s = 0; s < topo.switches.size(); ++s) {
    SwitchInst& sw = topo.switches[s];
    if (sw.island != kIntermediateIsland) continue;
    pts.clear();
    wts.clear();
    for (const TopLink& l : topo.links) {
      if (l.src_switch == static_cast<int>(s)) {
        pts.push_back(topo.switches[static_cast<std::size_t>(l.dst_switch)].pos);
        wts.push_back(l.carried_bw_bits_per_s);
      } else if (l.dst_switch == static_cast<int>(s)) {
        pts.push_back(topo.switches[static_cast<std::size_t>(l.src_switch)].pos);
        wts.push_back(l.carried_bw_bits_per_s);
      }
    }
    if (pts.empty()) continue;
    sw.pos = fp.clamp_to_island(floorplan::weighted_centroid(pts, wts),
                                kIntermediateIsland);
  }
  for (TopLink& l : topo.links) {
    l.length_mm = floorplan::manhattan_mm(
        topo.switches[static_cast<std::size_t>(l.src_switch)].pos,
        topo.switches[static_cast<std::size_t>(l.dst_switch)].pos);
  }
  for (std::size_t c = 0; c < spec.cores.size(); ++c) {
    const int sw = topo.switch_of_core[c];
    topo.ni_wire_mm[c] = floorplan::manhattan_mm(
        fp.core_rect(static_cast<soc::CoreId>(c)).center(),
        topo.switches[static_cast<std::size_t>(sw)].pos);
  }
}

int compact_unused_intermediate(NocTopology& topo) {
  const std::size_t n = topo.switches.size();
  std::vector<bool> used(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    if (topo.switches[s].island != kIntermediateIsland) used[s] = true;
  }
  for (const TopLink& l : topo.links) {
    used[static_cast<std::size_t>(l.src_switch)] = true;
    used[static_cast<std::size_t>(l.dst_switch)] = true;
  }
  std::vector<int> remap(n, -1);
  int next = 0;
  int kept_intermediate = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (!used[s]) continue;
    remap[s] = next++;
    if (topo.switches[s].island == kIntermediateIsland) ++kept_intermediate;
  }
  if (next == static_cast<int>(n)) return kept_intermediate;  // nothing to drop

  for (std::size_t s = 0; s < n; ++s) {
    if (!used[s]) continue;
    const auto to = static_cast<std::size_t>(remap[s]);
    if (to != s) topo.switches[to] = std::move(topo.switches[s]);
  }
  topo.switches.resize(static_cast<std::size_t>(next));
  for (TopLink& l : topo.links) {
    l.src_switch = remap[static_cast<std::size_t>(l.src_switch)];
    l.dst_switch = remap[static_cast<std::size_t>(l.dst_switch)];
  }
  for (int& s : topo.switch_of_core) s = remap[static_cast<std::size_t>(s)];
  for (FlowRoute& r : topo.routes) {
    r.src_switch = remap[static_cast<std::size_t>(r.src_switch)];
    r.dst_switch = remap[static_cast<std::size_t>(r.dst_switch)];
  }
  return kept_intermediate;
}

std::vector<int> design_signature(const NocTopology& topo) {
  std::vector<int> sig;
  sig.reserve(1 + topo.switch_of_core.size() + 2 * topo.links.size());
  sig.push_back(static_cast<int>(topo.switches.size()));
  for (const int s : topo.switch_of_core) sig.push_back(s);
  for (const TopLink& l : topo.links) {
    sig.push_back(l.src_switch);
    sig.push_back(l.dst_switch);
  }
  return sig;
}

BaseBoundParts compute_base_bound_parts(const soc::SocSpec& spec,
                                        const NocTopology& topo,
                                        const models::Technology& tech,
                                        double ni_dynamic_base_w,
                                        const std::vector<double>& core_traffic,
                                        std::vector<double>& min_flow_latency,
                                        std::vector<double>& switch_bw_floor,
                                        std::vector<double>& switch_ebit_floor) {
  const models::LinkModel link_model(tech);
  BaseBoundParts out;

  min_flow_latency.assign(spec.flows.size(), 0.0);
  switch_bw_floor.assign(topo.switches.size(), 0.0);
  const double pipe = tech.sw_pipeline_cycles;
  const double fifo = static_cast<double>(tech.fifo_latency_cycles);
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    const soc::Flow& flow = spec.flows[f];
    const int s_sw = topo.switch_of_core[static_cast<std::size_t>(flow.src)];
    const int d_sw = topo.switch_of_core[static_cast<std::size_t>(flow.dst)];
    double lat;
    if (s_sw == d_sw) {
      lat = 2.0 + pipe;  // exact: NI links + one switch traversal
    } else if (spec.cores[static_cast<std::size_t>(flow.src)].island ==
               spec.cores[static_cast<std::size_t>(flow.dst)].island) {
      lat = 2.0 + 2.0 * pipe + 1.0;  // at least one intra-island hop
    } else {
      lat = 2.0 + 2.0 * pipe + fifo;  // at least one crossing hop
    }
    min_flow_latency[f] = lat;
    out.latency_sum_lb_cycles += lat;

    const double bw = flow.bandwidth_bits_per_s;
    switch_bw_floor[static_cast<std::size_t>(s_sw)] += bw;
    if (d_sw != s_sw) switch_bw_floor[static_cast<std::size_t>(d_sw)] += bw;
  }

  out.power_prefix_w = ni_dynamic_base_w;
  for (std::size_t c = 0; c < spec.cores.size(); ++c) {
    out.power_prefix_w +=
        link_model.dynamic_power_w(topo.ni_wire_mm[c], core_traffic[c]);
  }
  switch_ebit_floor.assign(topo.switches.size(), 0.0);
  for (std::size_t s = 0; s < topo.switches.size(); ++s) {
    const SwitchInst& sw = topo.switches[s];
    const int core_ports = static_cast<int>(sw.cores.size());
    // Energy per bit floor for pass-through traffic: a pass-through switch
    // necessarily has an inbound link on top of its core ports, so its final
    // max(in, out) is at least core_ports + 1 and the crossbar only grows
    // from there.
    switch_ebit_floor[s] = (tech.sw_energy_base_pj_per_bit +
                            tech.sw_energy_per_port_pj_per_bit * (core_ports + 1)) *
                           1e-12;
  }
  return out;
}

double base_power_with_floor(const BaseBoundParts& parts,
                             const NocTopology& topo,
                             const models::Technology& tech,
                             const std::vector<double>& switch_bw_floor,
                             const std::vector<double>& freq_of) {
  const models::SwitchModel sw_model(tech);
  double acc = parts.power_prefix_w;
  for (std::size_t s = 0; s < topo.switches.size(); ++s) {
    const int core_ports = static_cast<int>(topo.switches[s].cores.size());
    acc += sw_model.dynamic_power_w(core_ports, core_ports, freq_of[s],
                                    switch_bw_floor[s]);
  }
  return acc;
}

}  // namespace detail

PartitionTable::PartitionTable(std::vector<PartitionKey> keys)
    : keys_(std::move(keys)) {
  std::sort(keys_.begin(), keys_.end());
  keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());
  slots_.resize(keys_.size());
}

const IslandPartition* PartitionTable::find(const PartitionKey& key) const {
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return nullptr;
  return &slots_[static_cast<std::size_t>(it - keys_.begin())];
}

const IslandPartition& PartitionTable::at(const PartitionKey& key) const {
  const IslandPartition* p = find(key);
  if (p == nullptr) throw std::out_of_range("PartitionTable: unknown key");
  return *p;
}

std::vector<double> compute_core_traffic(const soc::SocSpec& spec) {
  std::vector<double> t(spec.cores.size(), 0.0);
  for (const soc::Flow& f : spec.flows) {
    t[static_cast<std::size_t>(f.src)] += f.bandwidth_bits_per_s;
    t[static_cast<std::size_t>(f.dst)] += f.bandwidth_bits_per_s;
  }
  return t;
}

double compute_ni_dynamic_base_w(const soc::SocSpec& spec,
                                 const models::Technology& tech) {
  const models::NiModel ni_model(tech);
  std::vector<double> in_bw(spec.cores.size(), 0.0);
  std::vector<double> out_bw(spec.cores.size(), 0.0);
  for (const soc::Flow& f : spec.flows) {
    out_bw[static_cast<std::size_t>(f.src)] += f.bandwidth_bits_per_s;
    in_bw[static_cast<std::size_t>(f.dst)] += f.bandwidth_bits_per_s;
  }
  double total = 0.0;
  for (std::size_t c = 0; c < spec.cores.size(); ++c) {
    total += ni_model.dynamic_power_w(in_bw[c] + out_bw[c]);
  }
  return total;
}

std::vector<CandidateConfig> enumerate_candidates(
    const soc::SocSpec& spec, const std::vector<IslandNocParams>& island_params,
    const SynthesisOptions& options) {
  const std::size_t n_islands = spec.islands.size();
  int max_cores_per_island = 0;
  for (const IslandNocParams& p : island_params) {
    max_cores_per_island = std::max(max_cores_per_island, p.core_count);
  }
  const bool use_intermediate =
      options.allow_intermediate_island && has_cross_island_flows(spec);
  const int max_int =
      !use_intermediate ? 0
      : options.max_intermediate_switches >= 0
          ? options.max_intermediate_switches
          : std::max(2, max_cores_per_island);

  std::vector<CandidateConfig> candidates;
  std::set<std::vector<int>> seen_configs;
  for (int i = 1; i <= std::max(max_cores_per_island, 1); ++i) {
    // Switch count per island for this iteration (documented deviation:
    // k = min(min_sw + (i-1), |Vj|) so the minimum design is explored).
    std::vector<int> sw_count(n_islands, 0);
    for (std::size_t isl = 0; isl < n_islands; ++isl) {
      const IslandNocParams& p = island_params[isl];
      if (p.core_count == 0) continue;
      sw_count[isl] = std::min(p.min_switches + (i - 1), p.core_count);
      sw_count[isl] = std::max(sw_count[isl], 1);
    }
    if (!seen_configs.insert(sw_count).second) continue;  // saturated

    for (int k_int = 0; k_int <= max_int; ++k_int) {
      CandidateConfig cand;
      cand.switches_per_island = sw_count;
      cand.intermediate_switches = k_int;
      candidates.push_back(std::move(cand));
    }
  }
  return candidates;
}

PartitionTable compute_partitions(
    const soc::SocSpec& spec, const SynthesisOptions& options,
    const std::vector<IslandNocParams>& island_params,
    const std::vector<CandidateConfig>& candidates, exec::ThreadPool& pool) {
  // Collect the distinct (island, switch count) pairs, then fan the
  // independent min-cut problems out over the pool; the flat table is fully
  // sized up front so the parallel fill never mutates its structure.
  std::vector<PartitionKey> keys;
  for (const CandidateConfig& cand : candidates) {
    for (std::size_t isl = 0; isl < cand.switches_per_island.size(); ++isl) {
      keys.emplace_back(static_cast<soc::IslandId>(isl),
                        cand.switches_per_island[isl]);
    }
  }
  PartitionTable table(std::move(keys));

  const VcgScaling scaling = vcg_scaling(spec);
  exec::parallel_for_each(pool, table.size(), [&](std::size_t i) {
    OBS_SPAN("partition_mincut");
    const obs::PhaseScope obs_phase(obs::Phase::kPartition);
    const PartitionKey& key = table.key(i);
    table.slot(i) = detail::partition_island_mincut(
        spec, options, scaling, key.first, key.second,
        island_params[static_cast<std::size_t>(key.first)].max_sw_size);
  });
  return table;
}

CandidateOutcome evaluate_candidate(const EvalContext& ctx,
                                    const CandidateConfig& cand,
                                    EvalScratch* scratch,
                                    const ParetoBound* bound,
                                    DeltaReference* delta_record,
                                    DeltaRouteState* delta) {
  // Chaos-test injection points (inert unless armed; see
  // vinoc/faultinject/faultinject.hpp): a seeded eval-time throw exercises
  // the campaign's retry/quarantine path, a seeded stall widens the
  // kill-window for the CI crash-resume test.
  if (faultinject::armed()) {
    faultinject::maybe_fail(faultinject::Site::kEval, "evaluate_candidate");
    faultinject::maybe_stall(faultinject::Site::kEvalStall);
  }
  CandidateOutcome out;
  out.point.switches_per_island = cand.switches_per_island;
  out.point.intermediate_switches = cand.intermediate_switches;

  std::vector<const IslandPartition*> parts(cand.switches_per_island.size());
  for (std::size_t isl = 0; isl < parts.size(); ++isl) {
    parts[isl] = &ctx.partitions.at(
        PartitionKey{static_cast<soc::IslandId>(isl), cand.switches_per_island[isl]});
  }
  detail::build_switches(out.point.topology, ctx, parts, cand.intermediate_switches,
                         scratch);

  // Pareto-bound pruning: reject before routing when the pre-routing floor
  // is already dominated, otherwise hand the bound to the router for
  // per-flow checks (see RouteBound / route_all_flows for the soundness
  // restrictions around the fallback pass).
  RouteBound rbound;
  double base_avg_lat = 0.0;
  std::vector<double> local_min_lat;
  std::vector<double> local_bw_floor;
  std::vector<double> local_ebit_floor;
  if (bound != nullptr) {
    const obs::PhaseScope obs_phase(obs::Phase::kPrune);
    std::vector<double>& min_lat =
        scratch != nullptr ? scratch->min_flow_latency : local_min_lat;
    std::vector<double>& bw_floor =
        scratch != nullptr ? scratch->switch_bw_floor : local_bw_floor;
    std::vector<double>& ebit_floor =
        scratch != nullptr ? scratch->switch_ebit_floor : local_ebit_floor;
    const detail::BaseBoundParts parts_lb = detail::compute_base_bound_parts(
        ctx.spec, out.point.topology, ctx.options.tech, ctx.ni_dynamic_base_w,
        ctx.core_traffic, min_lat, bw_floor, ebit_floor);
    std::vector<double> local_freqs;
    std::vector<double>& freqs =
        scratch != nullptr ? scratch->switch_freq : local_freqs;
    freqs.assign(out.point.topology.switches.size(), 0.0);
    for (std::size_t s = 0; s < freqs.size(); ++s) {
      freqs[s] = out.point.topology.switches[s].freq_hz;
    }
    const double base_power = detail::base_power_with_floor(
        parts_lb, out.point.topology, ctx.options.tech, bw_floor, freqs);
    const double n_flows = static_cast<double>(ctx.spec.flows.size());
    base_avg_lat =
        ctx.spec.flows.empty() ? 0.0 : parts_lb.latency_sum_lb_cycles / n_flows;
    if (bound->dominated(base_power, base_avg_lat)) {
      out.status = EvalStatus::kPruned;
      out.pruned_power_lb_w = base_power;
      out.pruned_latency_lb_cycles = base_avg_lat;
      return out;
    }
    rbound.front = bound;
    rbound.base_power_lb_w = base_power;
    rbound.base_latency_sum_cycles = parts_lb.latency_sum_lb_cycles;
    rbound.min_flow_latency = &min_lat;
    rbound.switch_ebit_floor = &ebit_floor;
  }

  RouterOptions ropts;
  ropts.alpha_power = ctx.options.alpha_power;
  ropts.link_width_bits = ctx.options.link_width_bits;
  ropts.tech = ctx.options.tech;
  ropts.enforce_wire_timing = ctx.options.enforce_wire_timing;
  ropts.flow_order = ctx.flow_order;
  ropts.max_ports.resize(out.point.topology.switches.size());
  for (std::size_t s = 0; s < out.point.topology.switches.size(); ++s) {
    const soc::IslandId isl = out.point.topology.switches[s].island;
    ropts.max_ports[s] =
        isl == kIntermediateIsland
            ? ctx.intermediate_params.max_sw_size
            : ctx.island_params[static_cast<std::size_t>(isl)].max_sw_size;
  }

  const RouteOutcome outcome = [&] {
    OBS_SPAN("route_flows");
    const obs::PhaseScope obs_phase(obs::Phase::kRoute);
    return route_all_flows(out.point.topology, ctx.spec, ropts,
                           scratch != nullptr ? &scratch->router : nullptr,
                           bound != nullptr ? &rbound : nullptr, delta_record,
                           delta);
  }();
  if (outcome.pruned) {
    out.status = EvalStatus::kPruned;
    out.pruned_power_lb_w = outcome.pruned_power_lb_w;
    out.pruned_latency_lb_cycles = outcome.pruned_latency_lb_cycles;
    return out;
  }
  if (!outcome.success) {
    out.status = outcome.latency_violation ? EvalStatus::kRejectedLatency
                                           : EvalStatus::kRejectedUnroutable;
    return out;
  }
  out.status = EvalStatus::kRouted;
  if (bound != nullptr) {
    // Record the LAST bound checkpoint of this evaluation: the router's
    // per-flow bounds when they were active, else the pre-routing floor
    // (the only checkpoint of a fallback-gated pass). The trajectory does
    // not depend on which front was consulted, so the merge stage can
    // re-check these values against the enumeration-ordered front and
    // decide exactly what a sequential run would have decided.
    out.pruned_power_lb_w =
        outcome.bound_checked ? outcome.pruned_power_lb_w : rbound.base_power_lb_w;
    out.pruned_latency_lb_cycles =
        outcome.bound_checked ? outcome.pruned_latency_lb_cycles : base_avg_lat;
  }
  // The router may leave some offered intermediate switches unused; drop
  // them so designs deduplicate cleanly across k_int values (several k_int
  // can collapse onto the same effective design).
  out.point.intermediate_switches =
      detail::compact_unused_intermediate(out.point.topology);
  out.signature = detail::design_signature(out.point.topology);
  out.deadlock_free = !ctx.options.enforce_deadlock_freedom ||
                      is_deadlock_free(out.point.topology);
  if (!out.deadlock_free) return out;  // merge rejects it; skip the metrics
  detail::refine_intermediate_positions(out.point.topology, ctx.floorplan, ctx.spec,
                                        scratch);
  {
    OBS_SPAN("compute_metrics");
    const obs::PhaseScope obs_phase(obs::Phase::kMetrics);
    out.point.metrics =
        compute_metrics(out.point.topology, ctx.spec, ctx.options.tech,
                        ctx.options.link_width_bits,
                        scratch != nullptr ? &scratch->metrics : nullptr);
  }
  return out;
}

OutcomeMerger::OutcomeMerger(const SynthesisOptions& options, ReplayFn replay,
                             SynthesisResult& result)
    : options_(options), replay_(std::move(replay)), result_(result) {}

void OutcomeMerger::add(CandidateOutcome&& out) {
  const obs::PhaseScope obs_phase(obs::Phase::kMerge);
  // Merge — strictly in enumeration order (the caller feeds candidate
  // index_ here), so duplicate suppression, the stats counters and the
  // saved-point list are independent of how the evaluations were scheduled
  // (bit-identical to a sequential run).
  //
  // Every outcome evaluated with a bound carries the monotone lower bounds
  // of its LAST checkpoint (abort point when pruned, end of evaluation when
  // routed), and the bound trajectory does not depend on which front was
  // consulted. A concurrent snapshot can diverge from the sequential front
  // in both directions, and the merge reconciles both exactly:
  //
  //  * kPruned under a snapshot that was AHEAD (contains later-enumerated
  //    points): if the merge front does not dominate the recorded bounds,
  //    the sequential run would have kept evaluating — REPLAY against the
  //    merge front (deterministic mode). When it does dominate them,
  //    monotonicity guarantees the sequential run pruned too.
  //  * kRouted under a snapshot that was BEHIND (stale/empty): if the merge
  //    front dominates the recorded last-checkpoint bounds, the sequential
  //    run would have pruned at that checkpoint at the latest — count it
  //    pruned (no replay needed: a pruned candidate contributes nothing
  //    else). A sequential run never trips this (its snapshot dominance-
  //    equals the merge front), so it costs nothing when threads == 1.
  const std::size_t i = index_++;
  ++result_.stats.configs_explored;
  if (out.status == EvalStatus::kPruned && options_.deterministic_prune &&
      !merge_bound_.dominated(out.pruned_power_lb_w,
                              out.pruned_latency_lb_cycles)) {
    out = replay_(i, merge_bound_);
  }
  if (options_.prune && out.status == EvalStatus::kRouted &&
      merge_bound_.dominated(out.pruned_power_lb_w,
                             out.pruned_latency_lb_cycles)) {
    out.status = EvalStatus::kPruned;
  }
  if (out.status == EvalStatus::kPruned) {
    ++result_.stats.rejected_pruned;
    return;
  }
  if (out.status != EvalStatus::kRouted) {
    if (out.status == EvalStatus::kRejectedLatency) {
      ++result_.stats.rejected_latency;
    } else {
      ++result_.stats.rejected_unroutable;
    }
    return;
  }
  ++result_.stats.configs_routed;
  if (!seen_designs_.insert(std::move(out.signature)).second) {
    ++result_.stats.rejected_duplicate;
    return;
  }
  if (!out.deadlock_free) {
    ++result_.stats.rejected_deadlock;
    return;
  }
  ++result_.stats.configs_saved;
  if (options_.prune) {
    merge_bound_.insert(out.point.metrics.noc_dynamic_w,
                        out.point.metrics.avg_latency_cycles);
  }
  result_.points.push_back(std::move(out.point));
}

void OutcomeMerger::finish() {
  // Pareto front over (dynamic power, average latency), ascending power.
  std::vector<std::size_t> order(result_.points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  result_.pareto = pareto_front(std::move(order),
                                [this](std::size_t idx) -> const Metrics& {
                                  return result_.points[idx].metrics;
                                });
}

void merge_candidate_outcomes(
    std::vector<CandidateOutcome>&& outcomes, const SynthesisOptions& options,
    const std::function<CandidateOutcome(std::size_t, const ParetoBound&)>& replay,
    SynthesisResult& result) {
  OutcomeMerger merger(options, replay, result);
  for (CandidateOutcome& out : outcomes) merger.add(std::move(out));
  merger.finish();
}

}  // namespace vinoc::core

#include "vinoc/core/vcg.hpp"

#include <algorithm>
#include <stdexcept>

namespace vinoc::core {

VcgScaling vcg_scaling(const soc::SocSpec& spec) {
  VcgScaling s;
  s.min_lat_cycles = std::numeric_limits<double>::infinity();
  for (const soc::Flow& f : spec.flows) {
    s.max_bw_bits_per_s = std::max(s.max_bw_bits_per_s, f.bandwidth_bits_per_s);
    s.min_lat_cycles = std::min(s.min_lat_cycles, f.max_latency_cycles);
  }
  if (spec.flows.empty()) {
    s.max_bw_bits_per_s = 1.0;
    s.min_lat_cycles = 1.0;
  }
  return s;
}

graph::Digraph build_vcg(const soc::SocSpec& spec, soc::IslandId island,
                         double alpha, const VcgScaling& scaling) {
  if (alpha < 0.0 || alpha > 1.0) {
    throw std::invalid_argument("build_vcg: alpha must be in [0,1]");
  }
  if (scaling.max_bw_bits_per_s <= 0.0 || scaling.min_lat_cycles <= 0.0) {
    throw std::invalid_argument("build_vcg: scaling must be positive");
  }
  graph::Digraph vcg;
  std::vector<graph::NodeId> node_of(spec.cores.size(), graph::kInvalidNode);
  for (const soc::CoreId c : spec.cores_in_island(island)) {
    node_of[static_cast<std::size_t>(c)] =
        vcg.add_node(spec.cores[static_cast<std::size_t>(c)].name);
  }
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    const soc::Flow& flow = spec.flows[f];
    const graph::NodeId s = node_of[static_cast<std::size_t>(flow.src)];
    const graph::NodeId d = node_of[static_cast<std::size_t>(flow.dst)];
    if (s == graph::kInvalidNode || d == graph::kInvalidNode) continue;
    const double h = alpha * flow.bandwidth_bits_per_s / scaling.max_bw_bits_per_s +
                     (1.0 - alpha) * scaling.min_lat_cycles / flow.max_latency_cycles;
    vcg.add_edge(s, d, h, static_cast<std::int64_t>(f));
  }
  return vcg;
}

graph::Digraph build_vcg(const soc::SocSpec& spec, soc::IslandId island,
                         double alpha) {
  return build_vcg(spec, island, alpha, vcg_scaling(spec));
}

}  // namespace vinoc::core

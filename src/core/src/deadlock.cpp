#include "vinoc/core/deadlock.hpp"

#include <map>

#include "vinoc/graph/algorithms.hpp"

namespace vinoc::core {

graph::Digraph build_channel_dependency_graph(const NocTopology& topo) {
  graph::Digraph cdg(topo.links.size());
  for (std::size_t l = 0; l < topo.links.size(); ++l) {
    cdg.set_node_name(static_cast<graph::NodeId>(l),
                      "link" + std::to_string(l) + "_sw" +
                          std::to_string(topo.links[l].src_switch) + "_sw" +
                          std::to_string(topo.links[l].dst_switch));
  }
  std::map<std::pair<int, int>, bool> seen;
  for (std::size_t f = 0; f < topo.routes.size(); ++f) {
    const FlowRoute& r = topo.routes[f];
    for (std::size_t h = 1; h < r.links.size(); ++h) {
      const int a = r.links[h - 1];
      const int b = r.links[h];
      if (!seen.emplace(std::pair{a, b}, true).second) continue;
      cdg.add_edge(a, b, 1.0, static_cast<std::int64_t>(f));
    }
  }
  return cdg;
}

bool is_deadlock_free(const NocTopology& topo) {
  return graph::topological_order(build_channel_dependency_graph(topo)).has_value();
}

std::vector<std::vector<int>> dependency_cycles(const NocTopology& topo) {
  const graph::Digraph cdg = build_channel_dependency_graph(topo);
  const graph::Components scc = graph::strongly_connected_components(cdg);

  std::vector<std::vector<int>> by_comp(static_cast<std::size_t>(scc.count));
  for (std::size_t l = 0; l < cdg.node_count(); ++l) {
    by_comp[static_cast<std::size_t>(scc.comp_of[l])].push_back(static_cast<int>(l));
  }
  std::vector<std::vector<int>> cycles;
  for (auto& comp : by_comp) {
    if (comp.size() >= 2) {
      cycles.push_back(std::move(comp));
      continue;
    }
    // Single-node SCC is a cycle only with a self-loop (flow re-using the
    // same link twice in a row — impossible by construction, but checked).
    const auto n = static_cast<graph::NodeId>(comp.front());
    if (cdg.find_edge(n, n) != graph::kInvalidEdge) {
      cycles.push_back(std::move(comp));
    }
  }
  return cycles;
}

}  // namespace vinoc::core

#include "vinoc/core/topology.hpp"

#include <algorithm>
#include <cmath>

namespace vinoc::core {

int NocTopology::switch_ports_in(int sw) const {
  int ports = static_cast<int>(switches.at(static_cast<std::size_t>(sw)).cores.size());
  for (const TopLink& l : links) {
    if (l.dst_switch == sw) ++ports;
  }
  return ports;
}

int NocTopology::switch_ports_out(int sw) const {
  int ports = static_cast<int>(switches.at(static_cast<std::size_t>(sw)).cores.size());
  for (const TopLink& l : links) {
    if (l.src_switch == sw) ++ports;
  }
  return ports;
}

double NocTopology::switch_aggregate_bw(int sw, const soc::SocSpec& spec) const {
  double bw = 0.0;
  for (std::size_t f = 0; f < routes.size(); ++f) {
    const FlowRoute& r = routes[f];
    bool visits = (r.src_switch == sw || r.dst_switch == sw);
    if (!visits) {
      for (const int l : r.links) {
        if (links[static_cast<std::size_t>(l)].dst_switch == sw) {
          visits = true;
          break;
        }
      }
    }
    if (visits) bw += spec.flows[f].bandwidth_bits_per_s;
  }
  return bw;
}

std::vector<std::string> NocTopology::validate(const soc::SocSpec& spec) const {
  std::vector<std::string> problems;
  auto complain = [&problems](std::string m) { problems.push_back(std::move(m)); };

  if (switch_of_core.size() != spec.cores.size()) {
    complain("switch_of_core size mismatch");
    return problems;
  }
  if (routes.size() != spec.flows.size()) {
    complain("routes size mismatch");
    return problems;
  }

  for (std::size_t c = 0; c < spec.cores.size(); ++c) {
    const int sw = switch_of_core[c];
    if (sw < 0 || static_cast<std::size_t>(sw) >= switches.size()) {
      complain("core '" + spec.cores[c].name + "' attached to invalid switch");
      continue;
    }
    const SwitchInst& s = switches[static_cast<std::size_t>(sw)];
    if (s.island != spec.cores[c].island) {
      complain("core '" + spec.cores[c].name +
               "' attached to a switch in a different island");
    }
    if (std::find(s.cores.begin(), s.cores.end(), static_cast<soc::CoreId>(c)) ==
        s.cores.end()) {
      complain("core '" + spec.cores[c].name + "' missing from its switch's core list");
    }
  }

  for (std::size_t l = 0; l < links.size(); ++l) {
    const TopLink& link = links[l];
    if (link.src_switch < 0 ||
        static_cast<std::size_t>(link.src_switch) >= switches.size() ||
        link.dst_switch < 0 ||
        static_cast<std::size_t>(link.dst_switch) >= switches.size()) {
      complain("link " + std::to_string(l) + " has invalid endpoints");
      continue;
    }
    const bool crossing =
        switches[static_cast<std::size_t>(link.src_switch)].island !=
        switches[static_cast<std::size_t>(link.dst_switch)].island;
    if (crossing != link.crosses_island) {
      complain("link " + std::to_string(l) + " crossing flag inconsistent");
    }
    double bw = 0.0;
    for (const int f : link.flows) {
      if (f < 0 || static_cast<std::size_t>(f) >= spec.flows.size()) {
        complain("link " + std::to_string(l) + " references invalid flow");
        continue;
      }
      bw += spec.flows[static_cast<std::size_t>(f)].bandwidth_bits_per_s;
    }
    if (std::abs(bw - link.carried_bw_bits_per_s) > 1.0) {
      complain("link " + std::to_string(l) + " carried bandwidth inconsistent");
    }
  }

  for (std::size_t f = 0; f < routes.size(); ++f) {
    const FlowRoute& r = routes[f];
    const soc::Flow& flow = spec.flows[f];
    const int s_sw = switch_of_core[static_cast<std::size_t>(flow.src)];
    const int d_sw = switch_of_core[static_cast<std::size_t>(flow.dst)];
    if (r.src_switch != s_sw || r.dst_switch != d_sw) {
      complain("flow " + std::to_string(f) + " route endpoints mismatch attachment");
    }
    int cur = r.src_switch;
    for (const int l : r.links) {
      if (l < 0 || static_cast<std::size_t>(l) >= links.size()) {
        complain("flow " + std::to_string(f) + " route references invalid link");
        cur = -2;
        break;
      }
      const TopLink& link = links[static_cast<std::size_t>(l)];
      if (link.src_switch != cur) {
        complain("flow " + std::to_string(f) + " route links not contiguous");
        cur = -2;
        break;
      }
      if (std::find(link.flows.begin(), link.flows.end(), static_cast<int>(f)) ==
          link.flows.end()) {
        complain("flow " + std::to_string(f) + " not registered on link " +
                 std::to_string(l));
      }
      cur = link.dst_switch;
    }
    if (cur >= 0 && cur != r.dst_switch) {
      complain("flow " + std::to_string(f) + " route does not end at dst switch");
    }
    if (r.links.empty() && s_sw != d_sw) {
      complain("flow " + std::to_string(f) + " empty route across switches");
    }
  }
  return problems;
}

double route_latency_cycles(const NocTopology& topo, const FlowRoute& route,
                            const models::Technology& tech) {
  // NI -> switch link + switch -> NI link.
  double lat = 2.0;
  const int hops = static_cast<int>(route.links.size());
  const int switches_on_path = hops + 1;
  lat += static_cast<double>(switches_on_path) * tech.sw_pipeline_cycles;
  for (const int l : route.links) {
    lat += topo.links[static_cast<std::size_t>(l)].crosses_island
               ? static_cast<double>(tech.fifo_latency_cycles)
               : 1.0;
  }
  return lat;
}

Metrics compute_metrics(const NocTopology& topo, const soc::SocSpec& spec,
                        const models::Technology& tech, int link_width_bits,
                        MetricsScratch* scratch) {
  const models::SwitchModel sw_model(tech);
  const models::LinkModel link_model(tech);
  const models::NiModel ni_model(tech);
  const models::BisyncFifoModel fifo_model(tech);
  MetricsScratch local;
  MetricsScratch& sc = scratch != nullptr ? *scratch : local;

  Metrics m;
  const std::size_t n_sw = topo.switches.size();
  m.switch_count = static_cast<int>(n_sw);
  m.link_count = static_cast<int>(topo.links.size());

  // Per-switch port counts and aggregate traffic in ONE pass over links and
  // flows (the naive per-switch scans are O(S*L) and O(S*F*path) — this used
  // to dominate the metrics cost). Per-switch bandwidth accumulates in flow
  // order, exactly like NocTopology::switch_aggregate_bw, so the floating-
  // point sums are bit-identical to the per-switch scan.
  sc.ports_in.assign(n_sw, 0);
  sc.ports_out.assign(n_sw, 0);
  sc.switch_bw.assign(n_sw, 0.0);
  sc.visit_stamp.assign(n_sw, -1);
  for (std::size_t s = 0; s < n_sw; ++s) {
    sc.ports_in[s] = static_cast<int>(topo.switches[s].cores.size());
    sc.ports_out[s] = sc.ports_in[s];
  }
  for (const TopLink& l : topo.links) {
    ++sc.ports_out[static_cast<std::size_t>(l.src_switch)];
    ++sc.ports_in[static_cast<std::size_t>(l.dst_switch)];
  }
  for (std::size_t f = 0; f < topo.routes.size(); ++f) {
    const FlowRoute& r = topo.routes[f];
    const double bw = spec.flows[f].bandwidth_bits_per_s;
    const int stamp = static_cast<int>(f);
    auto visit = [&](int s) {
      if (s < 0) return;  // unset endpoint on a hand-built topology
      if (sc.visit_stamp[static_cast<std::size_t>(s)] != stamp) {
        sc.visit_stamp[static_cast<std::size_t>(s)] = stamp;
        sc.switch_bw[static_cast<std::size_t>(s)] += bw;
      }
    };
    visit(r.src_switch);
    visit(r.dst_switch);
    for (const int l : r.links) {
      visit(topo.links[static_cast<std::size_t>(l)].dst_switch);
    }
  }

  // Switches.
  for (std::size_t s = 0; s < n_sw; ++s) {
    const SwitchInst& sw = topo.switches[s];
    const int in = sc.ports_in[s];
    const int out = sc.ports_out[s];
    m.switch_dynamic_w += sw_model.dynamic_power_w(in, out, sw.freq_hz, sc.switch_bw[s]);
    m.noc_leakage_w += sw_model.leakage_w(in, out);
    m.noc_area_mm2 += sw_model.area_um2(in, out) * 1e-6;
    m.max_switch_ports = std::max({m.max_switch_ports, in, out});
  }

  // NIs and NI wires (one NI per core; wire carries both directions).
  sc.core_in_bw.assign(spec.cores.size(), 0.0);
  sc.core_out_bw.assign(spec.cores.size(), 0.0);
  std::vector<double>& core_in_bw = sc.core_in_bw;
  std::vector<double>& core_out_bw = sc.core_out_bw;
  for (const soc::Flow& f : spec.flows) {
    core_out_bw[static_cast<std::size_t>(f.src)] += f.bandwidth_bits_per_s;
    core_in_bw[static_cast<std::size_t>(f.dst)] += f.bandwidth_bits_per_s;
  }
  for (std::size_t c = 0; c < spec.cores.size(); ++c) {
    const double agg = core_in_bw[c] + core_out_bw[c];
    m.ni_dynamic_w += ni_model.dynamic_power_w(agg);
    m.noc_leakage_w += ni_model.leakage_w();
    m.noc_area_mm2 += ni_model.area_um2() * 1e-6;
    const double wire = topo.ni_wire_mm.at(c);
    m.total_wire_mm += wire;
    m.link_dynamic_w += link_model.dynamic_power_w(wire, agg);
    m.noc_leakage_w += link_model.leakage_w(wire, link_width_bits);
  }

  // Inter-switch links (+ FIFOs on crossings).
  for (const TopLink& l : topo.links) {
    m.total_wire_mm += l.length_mm;
    m.link_dynamic_w += link_model.dynamic_power_w(l.length_mm, l.carried_bw_bits_per_s);
    m.noc_leakage_w += link_model.leakage_w(l.length_mm, link_width_bits);
    if (l.crosses_island) {
      ++m.fifo_count;
      m.fifo_dynamic_w += fifo_model.dynamic_power_w(l.carried_bw_bits_per_s);
      m.noc_leakage_w += fifo_model.leakage_w();
      m.noc_area_mm2 += fifo_model.area_um2() * 1e-6;
    }
  }
  m.noc_dynamic_w = m.switch_dynamic_w + m.link_dynamic_w + m.ni_dynamic_w +
                    m.fifo_dynamic_w;

  // Zero-load latency statistics.
  double sum_lat = 0.0;
  for (const FlowRoute& r : topo.routes) {
    const double lat = route_latency_cycles(topo, r, tech);
    sum_lat += lat;
    m.max_latency_cycles = std::max(m.max_latency_cycles, lat);
  }
  m.avg_latency_cycles =
      topo.routes.empty() ? 0.0 : sum_lat / static_cast<double>(topo.routes.size());
  return m;
}

}  // namespace vinoc::core

#include "vinoc/core/explore.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "eval_internal.hpp"
#include "vinoc/core/candidates.hpp"
#include "vinoc/core/pareto.hpp"
#include "vinoc/core/prune.hpp"
#include "vinoc/core/width_eval.hpp"
#include "vinoc/exec/ordered_drain.hpp"
#include "vinoc/exec/parallel_for.hpp"
#include "vinoc/obs/profile.hpp"
#include "vinoc/obs/registry.hpp"
#include "vinoc/obs/trace.hpp"

namespace vinoc::core {

namespace {

/// One structural class of the sweep: widths whose derived island params
/// share max_sw_size / min_switches per island (frequencies may differ —
/// the lockstep verifies those per decision). All of them enumerate the
/// same candidates and read the same partition table.
struct WidthClass {
  std::vector<std::size_t> width_indices;  ///< into the sweep's width list
  std::vector<CandidateConfig> candidates;
  PartitionTable partitions;
  MultiWidthContext mctx;  ///< slices parallel to width_indices
  /// Single-width contexts (one per slice) for the solo schedule once the
  /// class's lockstep has been voted off (see below).
  std::vector<MultiWidthContext> solo_ctx;
};

}  // namespace

std::vector<WidthSweepEntry> synthesize_width_set(
    const soc::SocSpec& spec, const std::vector<int>& widths,
    const SynthesisOptions& base_options, exec::ThreadPool& pool,
    EvalScratchPool& scratch, WidthSetStats* stats) {
  OBS_SPAN("synthesize_width_set");
  const auto t0 = std::chrono::steady_clock::now();
  {
    const auto problems = spec.validate();
    if (!problems.empty()) {
      throw std::invalid_argument("synthesize: invalid SocSpec: " + problems.front());
    }
  }
  if (base_options.alpha < 0.0 || base_options.alpha > 1.0 ||
      base_options.alpha_power < 0.0 || base_options.alpha_power > 1.0) {
    throw std::invalid_argument("synthesize: alpha weights must be in [0,1]");
  }
  if (base_options.cancel != nullptr) {
    base_options.cancel->check("synthesize_width_set");
  }

  std::vector<WidthSweepEntry> entries(widths.size());
  for (std::size_t i = 0; i < widths.size(); ++i) {
    entries[i].width_bits = widths[i];
  }

  // Per-width derived parameters; group the feasible widths into structural
  // classes (an empty class key marks an infeasible width — an NI link
  // exceeds attainable bandwidth — recorded exactly like the
  // InfeasibleWidthError path of synthesize()).
  std::vector<WidthSlice> slices(widths.size());
  std::vector<WidthClass> classes;
  std::map<std::vector<int>, std::size_t> class_of_key;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    WidthSlice& s = slices[i];
    s.options = base_options;
    s.options.link_width_bits = widths[i];
    s.options.on_progress = nullptr;  // the sweep reports globally
    s.island_params = derive_island_params(spec, base_options.tech, widths[i],
                                           base_options.port_reserve);
    s.intermediate_params =
        derive_intermediate_params(s.island_params, base_options.tech);
    const std::vector<int> key = width_class_key(s.island_params);
    if (key.empty()) continue;  // infeasible width
    entries[i].feasible = true;
    const auto [it, inserted] = class_of_key.emplace(key, classes.size());
    if (inserted) classes.emplace_back();
    classes[it->second].width_indices.push_back(i);
  }

  // Width-invariant inputs shared by the WHOLE set.
  const floorplan::Floorplan plan = [&] {
    OBS_SPAN("floorplan");
    const obs::PhaseScope obs_phase(obs::Phase::kFloorplan);
    return floorplan::Floorplan::build(spec, base_options.floorplan);
  }();
  const std::vector<double> traffic = compute_core_traffic(spec);
  const std::vector<std::size_t> flow_order = bandwidth_descending_order(spec);
  const double ni_base = base_options.prune
                             ? compute_ni_dynamic_base_w(spec, base_options.tech)
                             : 0.0;

  // Candidate enumeration per class, then ONE min-cut partition per
  // distinct (island, switch count, max block size) across ALL classes —
  // the cross-width partition cache: two widths whose island shares a max
  // switch size reuse the same partition even when their frequencies (and
  // hence classes) differ.
  using CacheKey = std::tuple<soc::IslandId, int, int>;
  std::map<CacheKey, IslandPartition> partition_cache;
  int class_slots_total = 0;
  for (WidthClass& wc : classes) {
    const WidthSlice& first = slices[wc.width_indices.front()];
    wc.candidates = enumerate_candidates(spec, first.island_params, first.options);
    std::vector<PartitionKey> keys;
    for (const CandidateConfig& cand : wc.candidates) {
      for (std::size_t isl = 0; isl < cand.switches_per_island.size(); ++isl) {
        keys.emplace_back(static_cast<soc::IslandId>(isl),
                          cand.switches_per_island[isl]);
      }
    }
    wc.partitions = PartitionTable(std::move(keys));
    class_slots_total += static_cast<int>(wc.partitions.size());
    for (std::size_t i = 0; i < wc.partitions.size(); ++i) {
      const PartitionKey& key = wc.partitions.key(i);
      const int max_sw =
          first.island_params[static_cast<std::size_t>(key.first)].max_sw_size;
      partition_cache.emplace(CacheKey{key.first, key.second, max_sw},
                              IslandPartition{});
    }
  }
  {
    std::vector<std::map<CacheKey, IslandPartition>::iterator> cache_slots;
    cache_slots.reserve(partition_cache.size());
    for (auto it = partition_cache.begin(); it != partition_cache.end(); ++it) {
      cache_slots.push_back(it);
    }
    const VcgScaling scaling = vcg_scaling(spec);
    exec::parallel_for_each(pool, cache_slots.size(), [&](std::size_t i) {
      OBS_SPAN("partition_mincut");
      if (base_options.cancel != nullptr) {
        base_options.cancel->check("synthesize_width_set");
      }
      const obs::PhaseScope obs_phase(obs::Phase::kPartition);
      const auto& [island, k, max_sw] = cache_slots[i]->first;
      cache_slots[i]->second = detail::partition_island_mincut(
          spec, base_options, scaling, island, k, max_sw);
    });
  }
  for (WidthClass& wc : classes) {
    const WidthSlice& first = slices[wc.width_indices.front()];
    for (std::size_t i = 0; i < wc.partitions.size(); ++i) {
      const PartitionKey& key = wc.partitions.key(i);
      const int max_sw =
          first.island_params[static_cast<std::size_t>(key.first)].max_sw_size;
      wc.partitions.slot(i) =
          partition_cache.at(CacheKey{key.first, key.second, max_sw});
    }
    wc.mctx.spec = &spec;
    wc.mctx.floorplan = &plan;
    wc.mctx.partitions = &wc.partitions;
    wc.mctx.core_traffic = &traffic;
    wc.mctx.flow_order = &flow_order;
    wc.mctx.ni_dynamic_base_w = ni_base;
    for (const std::size_t wi : wc.width_indices) {
      wc.mctx.slices.push_back(slices[wi]);
    }
    for (const std::size_t wi : wc.width_indices) {
      MultiWidthContext solo;
      solo.spec = wc.mctx.spec;
      solo.floorplan = wc.mctx.floorplan;
      solo.partitions = wc.mctx.partitions;
      solo.core_traffic = wc.mctx.core_traffic;
      solo.flow_order = wc.mctx.flow_order;
      solo.ni_dynamic_base_w = wc.mctx.ni_dynamic_base_w;
      solo.slices.push_back(slices[wi]);
      wc.solo_ctx.push_back(std::move(solo));
    }
  }

  // Candidate-level delta evaluation on the sweep's SOLO schedule (one-width
  // classes, and classes voted out of lockstep below): same group map as
  // synthesize() — consecutive candidates sharing switches_per_island — with
  // one reference slot per (class, width) since the recorded hop sequences
  // are width-dependent (frequencies and capacities differ). Publication is
  // opportunistic; members without a published reference evaluate solo.
  // Lockstep evaluations don't participate: they already share whole routed
  // structures across widths.
  struct DeltaPlan {
    std::vector<int> group_of;   ///< per candidate of the class
    std::vector<char> leader;    ///< per candidate: first of its group
    std::vector<int> group_size; ///< per group
    /// refs[j * group_size.size() + g] for width slot j, group g.
    std::vector<std::shared_ptr<const DeltaReference>> refs;
    std::mutex mutex;
  };
  std::vector<std::unique_ptr<DeltaPlan>> delta_plans(classes.size());
  if (base_options.delta_eval) {
    for (std::size_t c = 0; c < classes.size(); ++c) {
      const WidthClass& wc = classes[c];
      auto dp = std::make_unique<DeltaPlan>();
      dp->group_of.resize(wc.candidates.size(), 0);
      dp->leader.resize(wc.candidates.size(), 0);
      int n_groups = 0;
      for (std::size_t k = 0; k < wc.candidates.size(); ++k) {
        if (k == 0 || wc.candidates[k].switches_per_island !=
                          wc.candidates[k - 1].switches_per_island) {
          dp->leader[k] = 1;
          ++n_groups;
        }
        dp->group_of[k] = n_groups - 1;
      }
      dp->group_size.resize(static_cast<std::size_t>(n_groups), 0);
      for (const int g : dp->group_of) ++dp->group_size[g];
      dp->refs.resize(wc.width_indices.size() *
                      static_cast<std::size_t>(n_groups));
      delta_plans[c] = std::move(dp);
    }
  }

  // Flatten (class, candidate) into one work list so every class's
  // candidates fan out over the same pool concurrently.
  struct Unit {
    std::size_t class_id;
    std::size_t cand_id;
  };
  std::vector<Unit> units;
  std::size_t progress_total = 0;
  for (std::size_t c = 0; c < classes.size(); ++c) {
    for (std::size_t k = 0; k < classes[c].candidates.size(); ++k) {
      units.push_back({c, k});
    }
    progress_total +=
        classes[c].candidates.size() * classes[c].width_indices.size();
  }

  // Per-width shared Pareto bounds (prune snapshots for solo fallbacks and
  // the every-width-dominated early abandon; the merge below restores exact
  // sequential pruning semantics regardless of snapshot timing).
  std::vector<SharedParetoBound> bounds(widths.size());

  // Per-width result shells plus STREAMING per-(class, width) merges: a
  // candidate whose enumeration-order predecessors have all merged is
  // merged and released as soon as it finishes, so the sweep buffers only
  // the out-of-order window instead of every width's outcome list
  // (ROADMAP (a); the high-water mark is reported in
  // SynthesisStats::peak_buffered_outcomes).
  for (std::size_t i = 0; i < widths.size(); ++i) {
    if (!entries[i].feasible) continue;
    SynthesisResult& result = entries[i].result;
    result.floorplan = plan;
    result.island_params = slices[i].island_params;
    result.intermediate_params = slices[i].intermediate_params;
  }
  struct ClassMergeState {
    explicit ClassMergeState(std::size_t n_candidates) : queue(n_candidates) {}
    /// Per-candidate batches (one outcome per width of the class), merged
    /// in enumeration order as predecessors finish.
    exec::OrderedDrainQueue<std::vector<CandidateOutcome>> queue;
    std::vector<EvalContext> replay_ctx;  ///< per width of the class
    std::vector<OutcomeMerger> mergers;   ///< parallel to replay_ctx
  };
  std::vector<std::unique_ptr<ClassMergeState>> merge_states;
  merge_states.reserve(classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    WidthClass& wc = classes[c];
    auto ms = std::make_unique<ClassMergeState>(wc.candidates.size());
    ms->replay_ctx.reserve(wc.width_indices.size());
    ms->mergers.reserve(wc.width_indices.size());
    for (const std::size_t wi : wc.width_indices) {
      ms->replay_ctx.push_back(EvalContext{spec,
                                           plan,
                                           slices[wi].island_params,
                                           slices[wi].intermediate_params,
                                           wc.partitions,
                                           traffic,
                                           slices[wi].options,
                                           &flow_order,
                                           ni_base});
    }
    for (std::size_t j = 0; j < wc.width_indices.size(); ++j) {
      const EvalContext* rctx = &ms->replay_ctx[j];
      ms->mergers.emplace_back(
          slices[wc.width_indices[j]].options,
          [rctx, &wc, &scratch](std::size_t k, const ParetoBound& bound) {
            return evaluate_candidate(*rctx, wc.candidates[k], &scratch.local(),
                                      &bound);
          },
          entries[wc.width_indices[j]].result);
    }
    merge_states.push_back(std::move(ms));
  }

  // Sweep-global share counters accumulate in per-worker obs registry
  // shards and merge deterministically after the pool joins; WidthSetStats
  // is a derived view of the merged registry. The buffered-outcome
  // high-water mark is the one exception: it is a RUNNING global sum (no
  // per-shard decomposition exists), so it stays an atomic CAS-max and is
  // folded into the registry afterwards.
  obs::ShardedRegistry metrics;
  std::atomic<int> buffered_outcomes{0};
  std::atomic<int> peak_buffered{0};
  // Per-width share-class attribution for SynthesisStats (observability;
  // scheduling-dependent, see synthesis.hpp).
  std::vector<std::atomic<int>> width_shared(widths.size());
  std::vector<std::atomic<int>> width_certified(widths.size());
  std::vector<std::atomic<int>> width_cohort(widths.size());
  std::vector<std::atomic<int>> width_fallback(widths.size());
  std::vector<std::atomic<int>> delta_cands_w(widths.size());
  std::vector<std::atomic<long long>> delta_reused_w(widths.size());
  std::vector<std::atomic<long long>> delta_certified_w(widths.size());
  std::vector<std::atomic<long long>> delta_rerouted_w(widths.size());
  std::vector<std::atomic<int>> delta_rejects_w(widths.size());
  for (std::size_t i = 0; i < widths.size(); ++i) {
    width_shared[i].store(0);
    width_certified[i].store(0);
    width_cohort[i].store(0);
    width_fallback[i].store(0);
    delta_cands_w[i].store(0);
    delta_reused_w[i].store(0);
    delta_certified_w[i].store(0);
    delta_rerouted_w[i].store(0);
    delta_rejects_w[i].store(0);
  }
  std::mutex progress_mutex;
  std::size_t progress_done = 0;
  const auto on_progress = base_options.on_progress;

  // Adaptive lockstep: both evaluation paths are bit-identical, so WHICH
  // one computes a candidate is a pure scheduling choice. The first few
  // candidates of a class probe the lockstep; when every lane diverges on
  // all of them (the widths' routing is systematically width-dependent —
  // different snapped frequencies shift every opening cost), the class
  // stops paying for lane verification and evaluates the remaining
  // candidates solo per width.
  constexpr std::size_t kLockstepProbes = 2;
  std::vector<std::atomic<int>> lockstep_vote(classes.size());
  for (auto& v : lockstep_vote) v.store(0);

  exec::parallel_for_each(pool, units.size(), [&](std::size_t u) {
    OBS_SPAN("sweep_unit");
    // Cancellation poll, once per (candidate, class) unit — the sweep's
    // equivalent of synthesize()'s per-candidate poll.
    if (base_options.cancel != nullptr) {
      base_options.cancel->check("synthesize_width_set");
    }
    const Unit unit = units[u];
    WidthClass& wc = classes[unit.class_id];
    EvalScratch& es = scratch.local();
    // Per-width front snapshots (kept alive for the whole evaluation).
    std::vector<std::shared_ptr<const ParetoBound>> snaps;
    std::vector<const ParetoBound*> fronts(wc.width_indices.size(), nullptr);
    if (base_options.prune) {
      snaps.resize(wc.width_indices.size());
      for (std::size_t j = 0; j < wc.width_indices.size(); ++j) {
        snaps[j] = bounds[wc.width_indices[j]].snapshot();
        fronts[j] = snaps[j].get();
      }
    }
    const bool probe = unit.cand_id < kLockstepProbes;
    const bool lockstep =
        wc.width_indices.size() > 1 &&
        (probe || lockstep_vote[unit.class_id].load(std::memory_order_relaxed) >= 0);
    WidthEvalCounters counters;
    std::vector<CandidateOutcome> outs;
    if (lockstep) {
      outs = evaluate_candidate_widths(wc.mctx, wc.candidates[unit.cand_id], &es,
                                       base_options.prune ? &fronts : nullptr,
                                       &counters);
    } else {
      // Lockstep disabled for this class: evaluate each width solo through
      // the same entry point. One geometry token spans all widths of the
      // candidate, so the hop/leakage matrices and class runs are still
      // built once (positions and admissibility are width-invariant).
      // Solo evaluations compose with the delta evaluator: per (class,
      // width), the group reference's hop record replays for adjacent group
      // members exactly as in synthesize().
      DeltaPlan* dp = delta_plans[unit.class_id].get();
      const int g = dp != nullptr ? dp->group_of[unit.cand_id] : 0;
      outs.resize(wc.mctx.slices.size());
      es.router.geometry_token = ++es.router.geometry_token_counter;
      for (std::size_t j = 0; j < wc.mctx.slices.size(); ++j) {
        std::shared_ptr<DeltaReference> rec;
        std::shared_ptr<const DeltaReference> ref;
        DeltaRouteState* delta = nullptr;
        const std::size_t slot =
            j * (dp != nullptr ? dp->group_size.size() : 0) +
            static_cast<std::size_t>(g);
        if (dp != nullptr) {
          if (dp->leader[unit.cand_id]) {
            if (dp->group_size[g] > 1) rec = std::make_shared<DeltaReference>();
          } else {
            {
              const std::lock_guard<std::mutex> lock(dp->mutex);
              ref = dp->refs[slot];
            }
            if (ref != nullptr) {
              es.delta.ref = ref.get();
              delta = &es.delta;
            }
          }
        }
        std::vector<const ParetoBound*> solo_front(1, fronts[j]);
        std::vector<CandidateOutcome> one = evaluate_candidate_widths(
            wc.solo_ctx[j], wc.candidates[unit.cand_id], &es,
            base_options.prune ? &solo_front : nullptr, &counters, rec.get(),
            delta);
        outs[j] = std::move(one.front());
        if (rec != nullptr && rec->valid) {
          const std::lock_guard<std::mutex> lock(dp->mutex);
          dp->refs[slot] = std::move(rec);
        }
        if (delta != nullptr) {
          es.delta.ref = nullptr;  // `ref` dies with this width slot
          if (delta->pnorm_matched) {
            const std::size_t wi = wc.width_indices[j];
            delta_cands_w[wi].fetch_add(1, std::memory_order_relaxed);
            delta_reused_w[wi].fetch_add(delta->flows_reused,
                                         std::memory_order_relaxed);
            delta_certified_w[wi].fetch_add(delta->flows_certified,
                                            std::memory_order_relaxed);
            delta_rerouted_w[wi].fetch_add(delta->flows_rerouted,
                                           std::memory_order_relaxed);
            delta_rejects_w[wi].fetch_add(delta->cert_rejects,
                                          std::memory_order_relaxed);
          }
        }
      }
      es.router.geometry_token = 0;
    }
    if (probe && wc.width_indices.size() > 1) {
      // Vote: a probe candidate where nothing was shared votes the class
      // out of lockstep; one where sharing worked locks it in.
      lockstep_vote[unit.class_id].fetch_add(counters.shared > 0 ? 1000 : -1,
                                             std::memory_order_relaxed);
    }
    {
      obs::Registry& shard = metrics.local();
      shard.add("shared_evals", counters.shared);
      shard.add("fallback_evals", counters.fallback);
      shard.add("certified_evals", counters.certified);
      shard.add("certificate_accepts", counters.certificate_accepts);
      shard.add("cohort_evals", counters.cohort_lanes);
      shard.add("cohort_groups", counters.cohort_groups);
    }
    if (lockstep) {
      for (std::size_t j = 0; j < counters.slice_class.size(); ++j) {
        const std::size_t wi = wc.width_indices[j];
        switch (counters.slice_class[j]) {
          case ShareClass::kCertified:
            ++width_certified[wi];
            [[fallthrough]];
          case ShareClass::kShared:
            ++width_shared[wi];
            break;
          case ShareClass::kCohort:
            ++width_cohort[wi];
            break;
          case ShareClass::kSolo:
            ++width_fallback[wi];
            break;
          case ShareClass::kLeader:
            break;
        }
      }
    }
    if (base_options.prune) {
      for (std::size_t j = 0; j < outs.size(); ++j) {
        const CandidateOutcome& o = outs[j];
        if (o.status == EvalStatus::kRouted && o.deadlock_free) {
          bounds[wc.width_indices[j]].publish(o.point.metrics.noc_dynamic_w,
                                              o.point.metrics.avg_latency_cycles);
        }
      }
    }
    {
      // Streaming merge: deposit this candidate's per-width batch, drain
      // every candidate whose predecessors are all merged (see
      // exec::OrderedDrainQueue — merges run on whichever worker advanced
      // the cursor, in strict enumeration order, so results are
      // bit-identical to the end-of-sweep merge). The buffered-outcome
      // accounting is sweep-global across classes.
      ClassMergeState& ms = *merge_states[unit.class_id];
      const int batch = static_cast<int>(outs.size());
      ms.queue.deposit(
          unit.cand_id, std::move(outs),
          [&ms](std::vector<CandidateOutcome>&& ready_outs) {
            for (std::size_t j = 0; j < ready_outs.size(); ++j) {
              ms.mergers[j].add(std::move(ready_outs[j]));
            }
          },
          [&, batch](int delta) {
            const int now =
                buffered_outcomes.fetch_add(delta * batch) + delta * batch;
            int peak = peak_buffered.load();
            while (now > peak &&
                   !peak_buffered.compare_exchange_weak(peak, now)) {
            }
          });
    }
    if (on_progress) {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      for (std::size_t j = 0; j < wc.width_indices.size(); ++j) {
        ++progress_done;
        on_progress({progress_done, progress_total,
                     widths[wc.width_indices[j]]});
      }
    }
  });

  // Finish the per-width merges (Pareto fronts) and stamp the stats.
  for (std::size_t c = 0; c < classes.size(); ++c) {
    for (OutcomeMerger& merger : merge_states[c]->mergers) merger.finish();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (std::size_t i = 0; i < widths.size(); ++i) {
    if (!entries[i].feasible) continue;
    SynthesisStats& st = entries[i].result.stats;
    st.elapsed_seconds = elapsed;
    st.width_shared = width_shared[i].load();
    st.width_certified = width_certified[i].load();
    st.width_cohort = width_cohort[i].load();
    st.width_fallback = width_fallback[i].load();
    st.delta_candidates = delta_cands_w[i].load();
    st.delta_flows_reused = delta_reused_w[i].load();
    st.delta_flows_certified = delta_certified_w[i].load();
    st.delta_flows_rerouted = delta_rerouted_w[i].load();
    st.delta_cert_rejects = delta_rejects_w[i].load();
    st.peak_buffered_outcomes = peak_buffered.load();
  }

  if (stats != nullptr) {
    const obs::Registry merged = metrics.merged();
    stats->width_classes = static_cast<int>(classes.size());
    stats->shared_evals = static_cast<int>(merged.value("shared_evals"));
    stats->fallback_evals = static_cast<int>(merged.value("fallback_evals"));
    stats->certified_evals = static_cast<int>(merged.value("certified_evals"));
    stats->certificate_accepts =
        static_cast<int>(merged.value("certificate_accepts"));
    stats->cohort_evals = static_cast<int>(merged.value("cohort_evals"));
    stats->cohort_groups = static_cast<int>(merged.value("cohort_groups"));
    stats->partition_cache_hits =
        class_slots_total - static_cast<int>(partition_cache.size());
    stats->peak_buffered_outcomes = peak_buffered.load();
    for (std::size_t i = 0; i < widths.size(); ++i) {
      stats->delta_candidates += delta_cands_w[i].load();
      stats->delta_flows_reused += delta_reused_w[i].load();
      stats->delta_flows_certified += delta_certified_w[i].load();
      stats->delta_flows_rerouted += delta_rerouted_w[i].load();
      stats->delta_cert_rejects += delta_rejects_w[i].load();
    }
  }
  return entries;
}

WidthSweepResult explore_link_widths(const soc::SocSpec& spec,
                                     const std::vector<int>& widths,
                                     const SynthesisOptions& base_options,
                                     WidthSetStats* stats) {
  if (widths.empty()) {
    throw std::invalid_argument("explore_link_widths: no widths given");
  }
  for (const int w : widths) {
    if (w <= 0) throw std::invalid_argument("explore_link_widths: width <= 0");
  }

  // One pool and one scratch-arena pool for the whole sweep: the
  // (candidate x width) work units fan out here and any nested fan-outs
  // share the SAME pool (see vinoc/exec/thread_pool.hpp), so total
  // parallelism stays bounded by base_options.threads.
  exec::ThreadPool pool(base_options.threads);
  EvalScratchPool scratch;

  WidthSweepResult out;
  out.entries =
      synthesize_width_set(spec, widths, base_options, pool, scratch, stats);

  // Merge: collect all points and keep the shared (power, latency) front.
  std::vector<GlobalPointRef> all;
  for (std::size_t e = 0; e < out.entries.size(); ++e) {
    if (!out.entries[e].feasible) continue;
    for (std::size_t p = 0; p < out.entries[e].result.points.size(); ++p) {
      all.push_back({e, p});
    }
  }
  out.pareto = pareto_front(std::move(all),
                            [&out](const GlobalPointRef& ref) -> const Metrics& {
                              return out.point(ref).metrics;
                            });
  return out;
}

obs::Registry WidthSetStats::to_registry() const {
  obs::Registry reg;
  reg.add("width_classes", width_classes);
  reg.add("shared_evals", shared_evals);
  reg.add("certified_evals", certified_evals);
  reg.add("certificate_accepts", certificate_accepts);
  reg.add("cohort_evals", cohort_evals);
  reg.add("cohort_groups", cohort_groups);
  reg.add("fallback_evals", fallback_evals);
  reg.record_max("peak_buffered_outcomes", peak_buffered_outcomes);
  reg.add("delta_candidates", delta_candidates);
  reg.add("delta_flows_reused", delta_flows_reused);
  reg.add("delta_flows_certified", delta_flows_certified);
  reg.add("delta_flows_rerouted", delta_flows_rerouted);
  reg.add("delta_cert_rejects", delta_cert_rejects);
  reg.set_gauge("shared_rate", shared_rate());
  reg.set_gauge("delta_reuse_rate", delta_reuse_rate());
  return reg;
}

}  // namespace vinoc::core

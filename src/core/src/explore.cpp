#include "vinoc/core/explore.hpp"

#include <algorithm>
#include <stdexcept>

namespace vinoc::core {

WidthSweepResult explore_link_widths(const soc::SocSpec& spec,
                                     const std::vector<int>& widths,
                                     const SynthesisOptions& base_options) {
  if (widths.empty()) {
    throw std::invalid_argument("explore_link_widths: no widths given");
  }
  WidthSweepResult out;
  for (const int w : widths) {
    if (w <= 0) throw std::invalid_argument("explore_link_widths: width <= 0");
    WidthSweepEntry entry;
    entry.width_bits = w;
    SynthesisOptions options = base_options;
    options.link_width_bits = w;
    try {
      entry.result = synthesize(spec, options);
      entry.feasible = true;
    } catch (const std::invalid_argument&) {
      // NI link unachievable at this width; keep the entry as infeasible so
      // callers can report the boundary.
      entry.feasible = false;
    }
    out.entries.push_back(std::move(entry));
  }

  // Merge: collect all points, sort by power, take the latency-improving
  // prefix points (same rule as the per-run Pareto).
  std::vector<GlobalPointRef> all;
  for (std::size_t e = 0; e < out.entries.size(); ++e) {
    if (!out.entries[e].feasible) continue;
    for (std::size_t p = 0; p < out.entries[e].result.points.size(); ++p) {
      all.push_back({e, p});
    }
  }
  std::sort(all.begin(), all.end(),
            [&out](const GlobalPointRef& a, const GlobalPointRef& b) {
              const Metrics& ma = out.point(a).metrics;
              const Metrics& mb = out.point(b).metrics;
              if (ma.noc_dynamic_w != mb.noc_dynamic_w) {
                return ma.noc_dynamic_w < mb.noc_dynamic_w;
              }
              return ma.avg_latency_cycles < mb.avg_latency_cycles;
            });
  double best_lat = std::numeric_limits<double>::infinity();
  for (const GlobalPointRef& ref : all) {
    const Metrics& m = out.point(ref).metrics;
    if (m.avg_latency_cycles < best_lat - 1e-12) {
      out.pareto.push_back(ref);
      best_lat = m.avg_latency_cycles;
    }
  }
  return out;
}

}  // namespace vinoc::core

#include "vinoc/core/explore.hpp"

#include <mutex>
#include <stdexcept>
#include <utility>

#include "vinoc/core/candidates.hpp"
#include "vinoc/core/pareto.hpp"
#include "vinoc/exec/parallel_for.hpp"

namespace vinoc::core {

WidthSweepResult explore_link_widths(const soc::SocSpec& spec,
                                     const std::vector<int>& widths,
                                     const SynthesisOptions& base_options) {
  if (widths.empty()) {
    throw std::invalid_argument("explore_link_widths: no widths given");
  }
  for (const int w : widths) {
    if (w <= 0) throw std::invalid_argument("explore_link_widths: width <= 0");
  }

  // One pool for the whole sweep: widths fan out here and every width's
  // synthesize() fans its candidate sweep out over the SAME pool (nested
  // fan-outs are safe, see vinoc/exec/thread_pool.hpp), so total parallelism
  // stays bounded by base_options.threads. One scratch-arena pool likewise:
  // a worker strand reuses its buffers across every width it touches.
  exec::ThreadPool pool(base_options.threads);
  EvalScratchPool scratch;

  // Each width's synthesize() serialises the progress callback only within
  // its own run; with widths evaluating concurrently the caller's callback
  // would otherwise be entered from several runs at once. Wrap it behind one
  // sweep-wide mutex so the documented "serialised" contract holds here too
  // (callers still see per-width completed/total pairs, possibly
  // interleaved between widths).
  std::mutex progress_mutex;
  const auto base_progress = base_options.on_progress;

  WidthSweepResult out;
  out.entries.resize(widths.size());
  exec::parallel_for_each(pool, widths.size(), [&](std::size_t i) {
    WidthSweepEntry& entry = out.entries[i];
    entry.width_bits = widths[i];
    SynthesisOptions options = base_options;
    options.link_width_bits = widths[i];
    if (base_progress) {
      options.on_progress = [&progress_mutex,
                             &base_progress](const SynthesisProgress& p) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        base_progress(p);
      };
    }
    try {
      entry.result = synthesize(spec, options, pool, scratch);
      entry.feasible = true;
    } catch (const InfeasibleWidthError&) {
      // NI link unachievable at this width; keep the entry as infeasible so
      // callers can report the boundary. Any other error (invalid spec, bad
      // alpha, ...) propagates — it would affect every width alike.
      entry.feasible = false;
    }
  });

  // Merge: collect all points and keep the shared (power, latency) front.
  std::vector<GlobalPointRef> all;
  for (std::size_t e = 0; e < out.entries.size(); ++e) {
    if (!out.entries[e].feasible) continue;
    for (std::size_t p = 0; p < out.entries[e].result.points.size(); ++p) {
      all.push_back({e, p});
    }
  }
  out.pareto = pareto_front(std::move(all),
                            [&out](const GlobalPointRef& ref) -> const Metrics& {
                              return out.point(ref).metrics;
                            });
  return out;
}

}  // namespace vinoc::core

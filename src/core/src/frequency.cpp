#include "vinoc/core/frequency.hpp"

#include <algorithm>
#include <stdexcept>

namespace vinoc::core {

std::vector<IslandNocParams> derive_island_params(const soc::SocSpec& spec,
                                                  const models::Technology& tech,
                                                  int link_width_bits,
                                                  int port_reserve) {
  if (link_width_bits <= 0) {
    throw std::invalid_argument("derive_island_params: link width must be > 0");
  }
  if (port_reserve < 0) {
    throw std::invalid_argument("derive_island_params: negative port reserve");
  }
  const models::SwitchModel sw_model(tech);

  std::vector<double> core_in(spec.cores.size(), 0.0);
  std::vector<double> core_out(spec.cores.size(), 0.0);
  for (const soc::Flow& f : spec.flows) {
    core_out[static_cast<std::size_t>(f.src)] += f.bandwidth_bits_per_s;
    core_in[static_cast<std::size_t>(f.dst)] += f.bandwidth_bits_per_s;
  }

  std::vector<IslandNocParams> params(spec.islands.size());
  for (std::size_t isl = 0; isl < spec.islands.size(); ++isl) {
    IslandNocParams& p = params[isl];
    const auto cores = spec.cores_in_island(static_cast<soc::IslandId>(isl));
    p.core_count = static_cast<int>(cores.size());
    double peak_link_bw = 0.0;
    for (const soc::CoreId c : cores) {
      peak_link_bw = std::max({peak_link_bw, core_in[static_cast<std::size_t>(c)],
                               core_out[static_cast<std::size_t>(c)]});
    }
    const double needed_hz = peak_link_bw / static_cast<double>(link_width_bits);
    p.freq_hz = models::snap_frequency_up(tech, needed_hz);
    if (needed_hz > tech.max_freq_hz * static_cast<double>(1)) {
      // The hungriest NI link exceeds what any clock can carry at this
      // width; the caller must widen the links. Flag via max_sw_size = 0.
      p.max_sw_size = 0;
      p.min_switches = 0;
      continue;
    }
    p.max_sw_size = sw_model.max_ports_at(p.freq_hz);
    const int usable = std::max(1, p.max_sw_size - port_reserve);
    p.min_switches =
        p.core_count == 0 ? 0 : (p.core_count + usable - 1) / usable;
  }
  return params;
}

IslandNocParams derive_intermediate_params(
    const std::vector<IslandNocParams>& island_params,
    const models::Technology& tech) {
  const models::SwitchModel sw_model(tech);
  IslandNocParams p;
  for (const IslandNocParams& ip : island_params) {
    p.freq_hz = std::max(p.freq_hz, ip.freq_hz);
  }
  if (p.freq_hz <= 0.0) p.freq_hz = tech.freq_grid_hz;
  p.max_sw_size = sw_model.max_ports_at(p.freq_hz);
  p.core_count = 0;      // indirect switches host no cores
  p.min_switches = 0;    // the intermediate island is optional
  return p;
}

}  // namespace vinoc::core

#include "vinoc/core/shutdown_safety.hpp"

#include <algorithm>

namespace vinoc::core {

std::vector<int> flows_blocked_by_shutdown(const NocTopology& topo,
                                           const soc::SocSpec& spec,
                                           soc::IslandId island) {
  std::vector<int> blocked;
  for (std::size_t f = 0; f < topo.routes.size(); ++f) {
    const FlowRoute& r = topo.routes[f];
    bool touches = false;
    // Endpoint switches.
    if (topo.switches[static_cast<std::size_t>(r.src_switch)].island == island ||
        topo.switches[static_cast<std::size_t>(r.dst_switch)].island == island) {
      touches = true;
    }
    // Transit switches and links (a link endpoint inside the island means
    // the island's power rails feed part of the path).
    for (const int l : r.links) {
      const TopLink& link = topo.links[static_cast<std::size_t>(l)];
      if (topo.switches[static_cast<std::size_t>(link.src_switch)].island == island ||
          topo.switches[static_cast<std::size_t>(link.dst_switch)].island == island) {
        touches = true;
      }
    }
    if (touches) blocked.push_back(static_cast<int>(f));
    (void)spec;
  }
  return blocked;
}

std::vector<std::string> verify_shutdown_safety(const NocTopology& topo,
                                                const soc::SocSpec& spec) {
  std::vector<std::string> violations;

  for (std::size_t s = 0; s < topo.switches.size(); ++s) {
    if (topo.switches[s].island == kIntermediateIsland &&
        !topo.switches[s].cores.empty()) {
      violations.push_back("intermediate switch " + std::to_string(s) +
                           " hosts cores (the NoC VI must be core-free)");
    }
  }

  for (std::size_t isl = 0; isl < spec.islands.size(); ++isl) {
    if (!spec.islands[isl].can_shutdown) continue;
    const auto island = static_cast<soc::IslandId>(isl);
    const std::vector<int> blocked = flows_blocked_by_shutdown(topo, spec, island);
    for (const int f : blocked) {
      const soc::Flow& flow = spec.flows[static_cast<std::size_t>(f)];
      const bool terminates =
          spec.cores[static_cast<std::size_t>(flow.src)].island == island ||
          spec.cores[static_cast<std::size_t>(flow.dst)].island == island;
      if (!terminates) {
        violations.push_back(
            "flow '" + flow.label + "' transits shutdown-capable island '" +
            spec.islands[isl].name + "' without terminating there");
      }
    }
  }
  return violations;
}

}  // namespace vinoc::core

#include "vinoc/core/width_eval.hpp"

#include <map>
#include <utility>

#include "eval_internal.hpp"
#include "vinoc/core/deadlock.hpp"
#include "vinoc/core/prune.hpp"
#include "vinoc/core/router.hpp"
#include "vinoc/faultinject/faultinject.hpp"
#include "vinoc/obs/trace.hpp"

namespace vinoc::core {

std::vector<int> width_class_key(
    const std::vector<IslandNocParams>& island_params) {
  std::vector<int> key;
  key.reserve(2 * island_params.size());
  for (const IslandNocParams& p : island_params) {
    if (p.core_count > 0 && p.max_sw_size == 0) return {};  // infeasible
    key.push_back(p.max_sw_size);
    key.push_back(p.min_switches);
  }
  return key;
}

namespace {

const ParetoBound kEmptyBound;

/// Per-switch frequency table of one slice for the shared topology
/// (island switches take their island's frequency, intermediates the
/// intermediate VI's) — exactly the freq_hz fields a solo build_switches
/// at that width would have produced.
std::vector<double> slice_freqs(const NocTopology& topo, const WidthSlice& s) {
  std::vector<double> f(topo.switches.size());
  for (std::size_t i = 0; i < topo.switches.size(); ++i) {
    const soc::IslandId isl = topo.switches[i].island;
    f[i] = isl == kIntermediateIsland
               ? s.intermediate_params.freq_hz
               : s.island_params[static_cast<std::size_t>(isl)].freq_hz;
  }
  return f;
}

/// Patches a shared-snapshot topology's frequency fields (per-switch,
/// per-island, intermediate) to slice `s`'s — the ONLY fields in which a
/// lockstep snapshot differs from that width's own solo state.
void patch_topology_freqs(NocTopology& topo, const WidthSlice& s) {
  for (std::size_t sw = 0; sw < topo.switches.size(); ++sw) {
    const soc::IslandId isl = topo.switches[sw].island;
    topo.switches[sw].freq_hz =
        isl == kIntermediateIsland
            ? s.intermediate_params.freq_hz
            : s.island_params[static_cast<std::size_t>(isl)].freq_hz;
  }
  for (std::size_t isl = 0; isl < s.island_params.size(); ++isl) {
    topo.island_freq_hz[isl] = s.island_params[isl].freq_hz;
  }
  topo.intermediate_freq_hz = s.intermediate_params.freq_hz;
}

/// RouterOptions of slice `s` over `topo` (per-switch port limits from the
/// slice's island params). The caller sets forbid_direct_cross.
RouterOptions router_options_for(const WidthSlice& s, const NocTopology& topo,
                                 const std::vector<std::size_t>* flow_order) {
  RouterOptions ropts;
  ropts.alpha_power = s.options.alpha_power;
  ropts.link_width_bits = s.options.link_width_bits;
  ropts.tech = s.options.tech;
  ropts.enforce_wire_timing = s.options.enforce_wire_timing;
  ropts.flow_order = flow_order;
  ropts.max_ports.resize(topo.switches.size());
  for (std::size_t sw = 0; sw < topo.switches.size(); ++sw) {
    const soc::IslandId isl = topo.switches[sw].island;
    ropts.max_ports[sw] =
        isl == kIntermediateIsland
            ? s.intermediate_params.max_sw_size
            : s.island_params[static_cast<std::size_t>(isl)].max_sw_size;
  }
  return ropts;
}

/// Follower-lane tables of slice `s` over the shared topology: per-switch
/// frequencies, port limits and wire-timing caps exactly as that width's
/// solo router would derive them (see WidthLane). Resets every lane state
/// field.
void build_width_lane(const NocTopology& topo, const WidthSlice& s,
                      const models::LinkModel& link_model, WidthLane& lane) {
  lane = WidthLane{};
  lane.width_bits = s.options.link_width_bits;
  lane.switch_freq = slice_freqs(topo, s);
  lane.max_ports.resize(topo.switches.size());
  lane.max_wire_len.assign(topo.switches.size(), 0.0);
  for (std::size_t i = 0; i < topo.switches.size(); ++i) {
    const soc::IslandId isl = topo.switches[i].island;
    lane.max_ports[i] =
        isl == kIntermediateIsland
            ? s.intermediate_params.max_sw_size
            : s.island_params[static_cast<std::size_t>(isl)].max_sw_size;
    if (s.options.enforce_wire_timing) {
      lane.max_wire_len[i] =
          link_model.max_unpipelined_length_mm(lane.switch_freq[i]);
    }
  }
}

/// Exact replay of the solo evaluator's recorded bound checkpoint for one
/// width: the pre-routing base bound, plus — when the solo run's per-flow
/// checks would have been active — the router's increment trajectory walked
/// off the final structure in routing order with the same expressions in
/// the same order (see Router::accumulate_power_lb / open_link).
void replay_bound_checkpoint(CandidateOutcome& o, const soc::SocSpec& spec,
                             const NocTopology& topo,
                             const models::Technology& tech,
                             const detail::BaseBoundParts& parts,
                             const std::vector<double>& bw_floor,
                             const std::vector<double>& ebit_floor,
                             const std::vector<double>& min_flow_latency,
                             const std::vector<double>& freqs,
                             const std::vector<std::size_t>& flow_order,
                             bool trajectory_checked) {
  const double base_power =
      detail::base_power_with_floor(parts, topo, tech, bw_floor, freqs);
  const double n_flows = static_cast<double>(spec.flows.size());
  const double base_avg_lat =
      spec.flows.empty() ? 0.0 : parts.latency_sum_lb_cycles / n_flows;
  if (!trajectory_checked) {
    // The solo run's only checkpoint was the pre-routing floor (a
    // fallback-gated pass-1 success, or a spec without flows).
    o.pruned_power_lb_w = base_power;
    o.pruned_latency_lb_cycles = base_avg_lat;
    return;
  }
  const double fifo_w_per_bw = tech.fifo_energy_pj_per_bit * 1e-12;
  const double link_w_per_bw_mm = tech.link_energy_pj_per_bit_mm * 1e-12;
  const double idle_w_per_hz = tech.sw_idle_power_per_port_w_per_hz;
  const double inv_flows = 1.0 / n_flows;
  double acc = base_power;
  double lat_sum = parts.latency_sum_lb_cycles;
  for (const std::size_t f : flow_order) {
    const FlowRoute& r = topo.routes[f];
    const double bw = spec.flows[f].bandwidth_bits_per_s;
    for (const int lid : r.links) {
      const TopLink& l = topo.links[static_cast<std::size_t>(lid)];
      const auto a = static_cast<std::size_t>(l.src_switch);
      const auto b = static_cast<std::size_t>(l.dst_switch);
      // A link's first user is the flow that opened it: the two new ports'
      // idle power was added at open time, before the hop increments.
      if (!l.flows.empty() && l.flows.front() == static_cast<int>(f)) {
        acc += idle_w_per_hz * (freqs[a] + freqs[b]);
      }
      const soc::IslandId a_isl = topo.switches[a].island;
      const soc::IslandId b_isl = topo.switches[b].island;
      if (a_isl != b_isl) acc += fifo_w_per_bw * bw;
      if (a_isl != kIntermediateIsland && b_isl != kIntermediateIsland) {
        // Island-island wire lengths never change after placement, so the
        // final topology's lengths equal the mid-routing ones bit-for-bit.
        acc += link_w_per_bw_mm * l.length_mm * bw;
      }
      if (l.dst_switch != r.dst_switch) {
        acc += ebit_floor[b] * bw;
      }
    }
    lat_sum += r.latency_cycles - min_flow_latency[f];
  }
  o.pruned_power_lb_w = acc;
  o.pruned_latency_lb_cycles = lat_sum * inv_flows;
}

/// Width-dependent fallback with PREFIX RESUME: the lane's snapshot holds
/// the exact state before the flow whose routing diverged (all earlier
/// flows proven identical by the lockstep), so only the width-dependent
/// TAIL is re-routed — plus, when that tail strands a flow in pass 1, the
/// full intermediate-island retry, exactly like route_all_flows() would.
/// The assembled outcome is bit-identical to evaluate_candidate() at this
/// width (bound checkpoints replayed; never kPruned — the merge restores
/// sequential pruning).
void resume_diverged_lane(const MultiWidthContext& ctx,
                          const CandidateConfig& cand, EvalScratch* scratch,
                          std::size_t slice_idx, WidthLane& lane,
                          const RouteOutcome& leader_pass1_failure,
                          CandidateOutcome& o) {
  OBS_SPAN("resume_diverged_lane");
  const soc::SocSpec& spec = *ctx.spec;
  const WidthSlice& s = ctx.slices[slice_idx];
  o.point.switches_per_island = cand.switches_per_island;
  o.point.intermediate_switches = cand.intermediate_switches;

  // The shared snapshot differs from the lane's solo state only in the
  // frequency fields; patch them to this width's.
  NocTopology topo = std::move(lane.resume_topo);
  patch_topology_freqs(topo, s);

  RouterOptions ropts = router_options_for(s, topo, ctx.flow_order);
  ropts.forbid_direct_cross = lane.resume_pass == 2;

  const bool fallback_possible = cand.intermediate_switches > 0;
  RouteOutcome final_outcome = resume_route_flows(
      topo, spec, ropts, lane.resume_order_pos,
      scratch != nullptr ? &scratch->router : nullptr);
  bool lane_pass2 = lane.resume_pass == 2;
  if (!final_outcome.success) {
    if (lane.resume_pass == 1 && fallback_possible) {
      // This width's pass 1 strands a flow: run the intermediate retry from
      // a pristine topology built at this width (identical decisions to the
      // solo run's pass 2).
      const EvalContext lane_ctx{spec,
                                 *ctx.floorplan,
                                 s.island_params,
                                 s.intermediate_params,
                                 *ctx.partitions,
                                 *ctx.core_traffic,
                                 s.options,
                                 ctx.flow_order,
                                 ctx.ni_dynamic_base_w};
      std::vector<const IslandPartition*> parts(cand.switches_per_island.size());
      for (std::size_t isl = 0; isl < parts.size(); ++isl) {
        parts[isl] = &ctx.partitions->at(PartitionKey{
            static_cast<soc::IslandId>(isl), cand.switches_per_island[isl]});
      }
      const RouteOutcome pass1 = final_outcome;
      detail::build_switches(topo, lane_ctx, parts, cand.intermediate_switches,
                             scratch);
      RouterOptions retry = ropts;
      retry.forbid_direct_cross = true;
      final_outcome =
          route_all_flows(topo, spec, retry,
                          scratch != nullptr ? &scratch->router : nullptr);
      lane_pass2 = true;
      if (!final_outcome.success) {
        final_outcome.latency_violation = pass1.latency_violation;
      }
    } else if (lane.resume_pass == 2) {
      // Pass-2 failure reports the greedy pass's diagnosis, which this lane
      // is proven to share with the leader (it stayed locked through it).
      final_outcome.latency_violation = leader_pass1_failure.latency_violation;
    }
  }
  if (!final_outcome.success) {
    o.status = final_outcome.latency_violation ? EvalStatus::kRejectedLatency
                                               : EvalStatus::kRejectedUnroutable;
    return;
  }
  o.status = EvalStatus::kRouted;
  o.point.intermediate_switches = detail::compact_unused_intermediate(topo);
  o.signature = detail::design_signature(topo);
  o.deadlock_free =
      !s.options.enforce_deadlock_freedom || is_deadlock_free(topo);
  if (s.options.prune) {
    std::vector<double> local_min_lat;
    std::vector<double> local_bw_floor;
    std::vector<double> local_ebit_floor;
    std::vector<double>& min_lat =
        scratch != nullptr ? scratch->min_flow_latency : local_min_lat;
    std::vector<double>& bw_floor =
        scratch != nullptr ? scratch->switch_bw_floor : local_bw_floor;
    std::vector<double>& ebit_floor =
        scratch != nullptr ? scratch->switch_ebit_floor : local_ebit_floor;
    const detail::BaseBoundParts parts_lb = detail::compute_base_bound_parts(
        spec, topo, s.options.tech, ctx.ni_dynamic_base_w, *ctx.core_traffic,
        min_lat, bw_floor, ebit_floor);
    std::vector<double> freqs(topo.switches.size());
    for (std::size_t sw = 0; sw < freqs.size(); ++sw) {
      freqs[sw] = topo.switches[sw].freq_hz;
    }
    const bool trajectory_checked =
        (!fallback_possible || lane_pass2) && !spec.flows.empty();
    replay_bound_checkpoint(o, spec, topo, s.options.tech, parts_lb, bw_floor,
                            ebit_floor, min_lat, freqs, *ctx.flow_order,
                            trajectory_checked);
  }
  if (o.deadlock_free) {
    detail::refine_intermediate_positions(topo, *ctx.floorplan, spec, scratch);
  }
  o.point.topology = std::move(topo);
  if (o.deadlock_free) {
    o.point.metrics = compute_metrics(
        o.point.topology, spec, s.options.tech, s.options.link_width_bits,
        scratch != nullptr ? &scratch->metrics : nullptr);
  }
}

/// Everything a surviving width needs to materialise its CandidateOutcome
/// from a successfully routed shared structure (post compaction and, when
/// deadlock-free, position refinement). The referenced buffers belong to
/// the caller and stay untouched until every width of the group has
/// materialised.
struct SharedStructure {
  const NocTopology* topo = nullptr;
  int kept_intermediate = 0;
  const std::vector<int>* signature = nullptr;
  bool deadlock_free = true;
  bool trajectory_checked = false;
  bool prune = false;
  const detail::BaseBoundParts* bound_parts = nullptr;
  const std::vector<double>* bw_floor = nullptr;
  const std::vector<double>* ebit_floor = nullptr;
  const std::vector<double>* min_lat = nullptr;
};

/// Re-cost phase for ONE surviving width: topology copy with the width's
/// own frequencies, per-width metrics, and an exact replay of the recorded
/// pruning-bound trajectory. Shared by the main lockstep's survivors and
/// cohort survivors — both are proofs that the width's solo run would have
/// produced this structure.
void materialize_shared_width(const MultiWidthContext& ctx,
                              const CandidateConfig& cand,
                              std::size_t slice_idx, const SharedStructure& ss,
                              EvalScratch* scratch, CandidateOutcome& o) {
  const soc::SocSpec& spec = *ctx.spec;
  const WidthSlice& s = ctx.slices[slice_idx];
  o.status = EvalStatus::kRouted;
  o.signature = *ss.signature;
  o.deadlock_free = ss.deadlock_free;
  o.point.switches_per_island = cand.switches_per_island;
  o.point.intermediate_switches = ss.kept_intermediate;
  const std::vector<double> freqs = slice_freqs(*ss.topo, s);
  o.point.topology = *ss.topo;
  for (std::size_t sw = 0; sw < o.point.topology.switches.size(); ++sw) {
    o.point.topology.switches[sw].freq_hz = freqs[sw];
  }
  for (std::size_t isl = 0; isl < s.island_params.size(); ++isl) {
    o.point.topology.island_freq_hz[isl] = s.island_params[isl].freq_hz;
  }
  o.point.topology.intermediate_freq_hz = s.intermediate_params.freq_hz;
  if (ss.deadlock_free) {
    o.point.metrics = compute_metrics(
        o.point.topology, spec, s.options.tech, s.options.link_width_bits,
        scratch != nullptr ? &scratch->metrics : nullptr);
  }
  if (ss.prune) {
    replay_bound_checkpoint(o, spec, *ss.topo, s.options.tech, *ss.bound_parts,
                            *ss.bw_floor, *ss.ebit_floor, *ss.min_lat, freqs,
                            *ctx.flow_order, ss.trajectory_checked);
  }
}

/// One diverged lane awaiting its tail resume. `pass1_failure` carries the
/// pass-1 diagnosis of the lane's lineage (the shared greedy pass it was
/// locked through), which pass-2 rejections report.
struct PendingResume {
  std::size_t slice = 0;
  WidthLane lane;
  RouteOutcome pass1_failure;
};

void resume_pool(const MultiWidthContext& ctx, const CandidateConfig& cand,
                 EvalScratch* scratch, std::vector<PendingResume>&& pool,
                 std::vector<CandidateOutcome>& out,
                 WidthEvalCounters* counters);

/// COHORT tail resume: every lane of `group` diverged at the same decision
/// of one shared routing pass, so their snapshots are identical — the first
/// lane's width leads a RESUMED lockstep over the shared tail and the
/// others verify it exactly like primary lanes (per-decision checks plus
/// path certificates). When the pass-1 tail strands a flow and an
/// intermediate island is offered, the cohort enters the retry pass
/// together from a pristine topology, still in lockstep. Lanes that diverge
/// again inside the cohort regroup recursively (each cohort consumes its
/// leader, so the recursion terminates); survivors materialise from the
/// cohort's shared structure.
void resume_cohort(const MultiWidthContext& ctx, const CandidateConfig& cand,
                   EvalScratch* scratch, std::vector<PendingResume>&& group,
                   std::vector<CandidateOutcome>& out,
                   WidthEvalCounters* counters) {
  const soc::SocSpec& spec = *ctx.spec;
  PendingResume& leader = group.front();
  const WidthSlice& ls = ctx.slices[leader.slice];
  const int pass = leader.lane.resume_pass;
  const int pos = leader.lane.resume_order_pos;
  const bool fallback_possible = cand.intermediate_switches > 0;
  if (counters != nullptr) ++counters->cohort_groups;

  // The shared snapshot (identical across the group by construction),
  // patched to the cohort leader's frequencies.
  NocTopology topo = std::move(leader.lane.resume_topo);
  patch_topology_freqs(topo, ls);

  RouterOptions ropts = router_options_for(ls, topo, ctx.flow_order);
  ropts.forbid_direct_cross = pass == 2;

  // Cohort follower lanes, one per non-leader member.
  const models::LinkModel link_model(ls.options.tech);
  std::vector<WidthLane> lanes(group.size() - 1);
  for (std::size_t j = 1; j < group.size(); ++j) {
    build_width_lane(topo, ctx.slices[group[j].slice], link_model,
                     lanes[j - 1]);
  }

  RouteOutcome final_outcome = resume_route_flows_multi(
      topo, spec, ropts, pos, lanes,
      scratch != nullptr ? &scratch->router : nullptr);
  bool pass2 = pass == 2;
  RouteOutcome pass1_diag = leader.pass1_failure;
  std::vector<PendingResume> next;
  std::vector<std::size_t> locked;
  for (std::size_t j = 1; j < group.size(); ++j) {
    WidthLane& lane = lanes[j - 1];
    if (counters != nullptr) {
      counters->certificate_accepts += lane.certificate_accepts;
    }
    if (lane.diverged) {
      next.push_back({group[j].slice, std::move(lane), leader.pass1_failure});
    } else {
      locked.push_back(group[j].slice);
    }
  }

  if (!final_outcome.success && pass == 1 && fallback_possible) {
    // The cohort's pass-1 tail strands a flow every still-locked member is
    // proven to strand identically: run the intermediate-island retry as a
    // cohort too, from a pristine topology at the leader's width.
    pass1_diag = final_outcome;
    const EvalContext lane_ctx{spec,
                               *ctx.floorplan,
                               ls.island_params,
                               ls.intermediate_params,
                               *ctx.partitions,
                               *ctx.core_traffic,
                               ls.options,
                               ctx.flow_order,
                               ctx.ni_dynamic_base_w};
    std::vector<const IslandPartition*> parts(cand.switches_per_island.size());
    for (std::size_t isl = 0; isl < parts.size(); ++isl) {
      parts[isl] = &ctx.partitions->at(PartitionKey{
          static_cast<soc::IslandId>(isl), cand.switches_per_island[isl]});
    }
    detail::build_switches(topo, lane_ctx, parts, cand.intermediate_switches,
                           scratch);
    RouterOptions retry = ropts;
    retry.forbid_direct_cross = true;
    std::vector<WidthLane> retry_lanes(locked.size());
    for (std::size_t j = 0; j < locked.size(); ++j) {
      build_width_lane(topo, ctx.slices[locked[j]], link_model,
                       retry_lanes[j]);
    }
    final_outcome = resume_route_flows_multi(
        topo, spec, retry, 0, retry_lanes,
        scratch != nullptr ? &scratch->router : nullptr);
    pass2 = true;
    std::vector<std::size_t> still_locked;
    for (std::size_t j = 0; j < locked.size(); ++j) {
      WidthLane& lane = retry_lanes[j];
      if (counters != nullptr) {
        counters->certificate_accepts += lane.certificate_accepts;
      }
      if (lane.diverged) {
        next.push_back({locked[j], std::move(lane), pass1_diag});
      } else {
        still_locked.push_back(locked[j]);
      }
    }
    locked = std::move(still_locked);
  }

  // The cohort's results are the leader plus every still-locked member;
  // lanes that diverged again inside it are classified by whatever finally
  // resolves them (a child cohort or a solo resume).
  if (counters != nullptr) {
    counters->cohort_lanes += 1 + static_cast<int>(locked.size());
    counters->slice_class[leader.slice] = ShareClass::kCohort;
    for (const std::size_t slice_idx : locked) {
      counters->slice_class[slice_idx] = ShareClass::kCohort;
    }
  }

  if (!final_outcome.success) {
    // The leader and every still-locked member fail the same way; pass-2
    // rejections report the pass-1 diagnosis (see resume_diverged_lane).
    const bool lat =
        pass2 ? pass1_diag.latency_violation : final_outcome.latency_violation;
    const EvalStatus status =
        lat ? EvalStatus::kRejectedLatency : EvalStatus::kRejectedUnroutable;
    auto reject = [&](std::size_t slice_idx) {
      CandidateOutcome& o = out[slice_idx];
      o.status = status;
      o.point.switches_per_island = cand.switches_per_island;
      o.point.intermediate_switches = cand.intermediate_switches;
    };
    reject(leader.slice);
    for (const std::size_t slice_idx : locked) reject(slice_idx);
  } else {
    const int kept_intermediate = detail::compact_unused_intermediate(topo);
    const std::vector<int> signature = detail::design_signature(topo);
    const bool deadlock_free =
        !ls.options.enforce_deadlock_freedom || is_deadlock_free(topo);
    if (deadlock_free) {
      detail::refine_intermediate_positions(topo, *ctx.floorplan, spec, scratch);
    }
    std::vector<double> local_min_lat;
    std::vector<double> local_bw_floor;
    std::vector<double> local_ebit_floor;
    std::vector<double>& min_lat =
        scratch != nullptr ? scratch->min_flow_latency : local_min_lat;
    std::vector<double>& bw_floor =
        scratch != nullptr ? scratch->switch_bw_floor : local_bw_floor;
    std::vector<double>& ebit_floor =
        scratch != nullptr ? scratch->switch_ebit_floor : local_ebit_floor;
    detail::BaseBoundParts bound_parts;
    const bool prune = ls.options.prune;
    if (prune) {
      bound_parts = detail::compute_base_bound_parts(
          spec, topo, ls.options.tech, ctx.ni_dynamic_base_w, *ctx.core_traffic,
          min_lat, bw_floor, ebit_floor);
    }
    SharedStructure ss;
    ss.topo = &topo;
    ss.kept_intermediate = kept_intermediate;
    ss.signature = &signature;
    ss.deadlock_free = deadlock_free;
    ss.trajectory_checked = (!fallback_possible || pass2) && !spec.flows.empty();
    ss.prune = prune;
    ss.bound_parts = &bound_parts;
    ss.bw_floor = &bw_floor;
    ss.ebit_floor = &ebit_floor;
    ss.min_lat = &min_lat;
    materialize_shared_width(ctx, cand, leader.slice, ss, scratch,
                             out[leader.slice]);
    for (const std::size_t slice_idx : locked) {
      materialize_shared_width(ctx, cand, slice_idx, ss, scratch,
                               out[slice_idx]);
    }
  }

  if (!next.empty()) {
    resume_pool(ctx, cand, scratch, std::move(next), out, counters);
  }
}

/// Routes every diverged lane's tail: lanes of one pool share ancestry (one
/// routing history), so equal (pass, position) implies identical snapshots
/// — those form cohorts; unique divergence points resume solo.
void resume_pool(const MultiWidthContext& ctx, const CandidateConfig& cand,
                 EvalScratch* scratch, std::vector<PendingResume>&& pool,
                 std::vector<CandidateOutcome>& out,
                 WidthEvalCounters* counters) {
  std::map<std::pair<int, int>, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    groups[{pool[i].lane.resume_pass, pool[i].lane.resume_order_pos}]
        .push_back(i);
  }
  for (auto& [key, members] : groups) {
    if (members.size() == 1) {
      PendingResume& e = pool[members.front()];
      if (counters != nullptr) {
        counters->slice_class[e.slice] = ShareClass::kSolo;
      }
      resume_diverged_lane(ctx, cand, scratch, e.slice, e.lane,
                           e.pass1_failure, out[e.slice]);
    } else {
      std::vector<PendingResume> group;
      group.reserve(members.size());
      for (const std::size_t i : members) group.push_back(std::move(pool[i]));
      resume_cohort(ctx, cand, scratch, std::move(group), out, counters);
    }
  }
}

void eval_group(const MultiWidthContext& ctx, const CandidateConfig& cand,
                EvalScratch* scratch,
                const std::vector<const ParetoBound*>* fronts,
                const std::vector<std::size_t>& idx,
                std::vector<CandidateOutcome>& out,
                WidthEvalCounters* counters, DeltaReference* delta_record,
                DeltaRouteState* delta) {
  const soc::SocSpec& spec = *ctx.spec;
  const WidthSlice& lead = ctx.slices[idx.front()];
  const EvalContext lead_ctx{spec,
                             *ctx.floorplan,
                             lead.island_params,
                             lead.intermediate_params,
                             *ctx.partitions,
                             *ctx.core_traffic,
                             lead.options,
                             ctx.flow_order,
                             ctx.ni_dynamic_base_w};

  if (idx.size() == 1) {
    // Solo evaluation (a one-width group, or a diverged width): exactly the
    // synthesize() worker body. With pruning on, an empty bound keeps the
    // checkpoint recording active even before any front point exists.
    const ParetoBound* bound = nullptr;
    if (lead.options.prune) {
      bound = fronts != nullptr && (*fronts)[idx.front()] != nullptr
                  ? (*fronts)[idx.front()]
                  : &kEmptyBound;
    }
    out[idx.front()] =
        evaluate_candidate(lead_ctx, cand, scratch, bound, delta_record, delta);
    return;
  }

  // ---- Structure phase: leader routes, followers verify in lockstep. ----
  std::vector<const IslandPartition*> parts(cand.switches_per_island.size());
  for (std::size_t isl = 0; isl < parts.size(); ++isl) {
    parts[isl] = &ctx.partitions->at(
        PartitionKey{static_cast<soc::IslandId>(isl), cand.switches_per_island[isl]});
  }
  NocTopology topo;
  detail::build_switches(topo, lead_ctx, parts, cand.intermediate_switches, scratch);

  // Pre-routing bound parts (width-invariant) — used both for the
  // every-width-dominated early abandon and for the per-width checkpoint
  // replay after materialisation.
  std::vector<double> local_min_lat;
  std::vector<double> local_bw_floor;
  std::vector<double> local_ebit_floor;
  std::vector<double>& min_lat =
      scratch != nullptr ? scratch->min_flow_latency : local_min_lat;
  std::vector<double>& bw_floor =
      scratch != nullptr ? scratch->switch_bw_floor : local_bw_floor;
  std::vector<double>& ebit_floor =
      scratch != nullptr ? scratch->switch_ebit_floor : local_ebit_floor;
  detail::BaseBoundParts bound_parts;
  const bool prune = lead.options.prune;
  if (prune) {
    bound_parts = detail::compute_base_bound_parts(
        spec, topo, lead.options.tech, ctx.ni_dynamic_base_w, *ctx.core_traffic,
        min_lat, bw_floor, ebit_floor);
    if (fronts != nullptr && !spec.flows.empty()) {
      // Abandon before routing only when EVERY width's front dominates its
      // pre-routing floor — then every solo run would have pruned here, and
      // the merge replay machinery re-checks (and, in deterministic mode,
      // re-evaluates) any width whose merge front disagrees.
      const double base_avg =
          bound_parts.latency_sum_lb_cycles /
          static_cast<double>(spec.flows.size());
      bool all_dominated = true;
      std::vector<double> base_powers(idx.size());
      for (std::size_t j = 0; j < idx.size(); ++j) {
        const ParetoBound* front = (*fronts)[idx[j]];
        const std::vector<double> freqs = slice_freqs(topo, ctx.slices[idx[j]]);
        base_powers[j] = detail::base_power_with_floor(
            bound_parts, topo, lead.options.tech, bw_floor, freqs);
        if (front == nullptr || !front->dominated(base_powers[j], base_avg)) {
          all_dominated = false;
          break;
        }
      }
      if (all_dominated) {
        for (std::size_t j = 0; j < idx.size(); ++j) {
          CandidateOutcome& o = out[idx[j]];
          o.status = EvalStatus::kPruned;
          o.point.switches_per_island = cand.switches_per_island;
          o.point.intermediate_switches = cand.intermediate_switches;
          o.pruned_power_lb_w = base_powers[j];
          o.pruned_latency_lb_cycles = base_avg;
        }
        return;
      }
    }
  }

  // Follower lanes: per-switch width/frequency tables of each non-leader
  // width, mirroring what that width's solo router would derive.
  const models::LinkModel link_model(lead.options.tech);
  std::vector<WidthLane> lanes(idx.size() - 1);
  for (std::size_t j = 1; j < idx.size(); ++j) {
    build_width_lane(topo, ctx.slices[idx[j]], link_model, lanes[j - 1]);
  }

  const RouterOptions ropts = router_options_for(lead, topo, ctx.flow_order);

  bool pass2_ran = false;
  RouteOutcome pass1_failure;
  const RouteOutcome outcome = route_all_flows_multi(
      topo, spec, ropts, lanes, scratch != nullptr ? &scratch->router : nullptr,
      &pass2_ran, &pass1_failure);

  std::vector<std::size_t> kept{idx.front()};
  std::vector<PendingResume> pool;
  for (std::size_t j = 1; j < idx.size(); ++j) {
    WidthLane& lane = lanes[j - 1];
    if (counters != nullptr) {
      counters->certificate_accepts += lane.certificate_accepts;
    }
    if (lane.diverged) {
      pool.push_back({idx[j], std::move(lane), pass1_failure});
    } else {
      kept.push_back(idx[j]);
      if (counters != nullptr) {
        counters->slice_class[idx[j]] = lane.used_certificate
                                            ? ShareClass::kCertified
                                            : ShareClass::kShared;
        if (lane.used_certificate) ++counters->certified;
      }
    }
  }
  if (counters != nullptr) {
    counters->shared += static_cast<int>(kept.size()) - 1;
    counters->fallback += static_cast<int>(pool.size());
  }

  if (!outcome.success) {
    // All still-locked widths are proven to fail on the same flow the same
    // way; bounds are irrelevant for rejections.
    for (const std::size_t i : kept) {
      CandidateOutcome& o = out[i];
      o.status = outcome.latency_violation ? EvalStatus::kRejectedLatency
                                           : EvalStatus::kRejectedUnroutable;
      o.point.switches_per_island = cand.switches_per_island;
      o.point.intermediate_switches = cand.intermediate_switches;
    }
  } else {
    // ---- Re-cost phase: materialise each surviving width. ----
    const int kept_intermediate = detail::compact_unused_intermediate(topo);
    const std::vector<int> signature = detail::design_signature(topo);
    const bool deadlock_free =
        !lead.options.enforce_deadlock_freedom || is_deadlock_free(topo);
    if (deadlock_free) {
      detail::refine_intermediate_positions(topo, *ctx.floorplan, spec, scratch);
    }
    if (prune) {
      // Recompute the bound parts off the final structure: attachment,
      // island-switch positions and per-switch core sets are untouched by
      // compaction/refinement, so every value matches the pre-routing one
      // the solo evaluator recorded (dropped intermediates contribute an
      // exact 0 to the power floor).
      bound_parts = detail::compute_base_bound_parts(
          spec, topo, lead.options.tech, ctx.ni_dynamic_base_w,
          *ctx.core_traffic, min_lat, bw_floor, ebit_floor);
    }
    // The solo run records the trajectory checkpoint only when its per-flow
    // checks were active: never when the intermediate-island fallback could
    // still have changed the outcome (pass 1 with intermediates offered),
    // always in the pass that actually produced the result otherwise.
    const bool fallback_possible = cand.intermediate_switches > 0;
    SharedStructure ss;
    ss.topo = &topo;
    ss.kept_intermediate = kept_intermediate;
    ss.signature = &signature;
    ss.deadlock_free = deadlock_free;
    ss.trajectory_checked =
        (!fallback_possible || pass2_ran) && !spec.flows.empty();
    ss.prune = prune;
    ss.bound_parts = &bound_parts;
    ss.bw_floor = &bw_floor;
    ss.ebit_floor = &ebit_floor;
    ss.min_lat = &min_lat;
    for (const std::size_t i : kept) {
      materialize_shared_width(ctx, cand, i, ss, scratch, out[i]);
    }
  }

  // Width-dependent widths: resume each diverged lane's TAIL from its
  // snapshot — same-decision divergences lockstep each other as cohorts,
  // unique ones resume solo (see resume_pool) — the shared prefix is never
  // recomputed.
  if (!pool.empty()) {
    resume_pool(ctx, cand, scratch, std::move(pool), out, counters);
  }
}

}  // namespace

std::vector<CandidateOutcome> evaluate_candidate_widths(
    const MultiWidthContext& ctx, const CandidateConfig& cand,
    EvalScratch* scratch, const std::vector<const ParetoBound*>* fronts,
    WidthEvalCounters* counters, DeltaReference* delta_record,
    DeltaRouteState* delta) {
  // Chaos-test injection points, mirroring evaluate_candidate() — the width
  // sweep is the campaign's dominant compute path, so fault/stall coverage
  // must reach it too.
  if (faultinject::armed()) {
    faultinject::maybe_fail(faultinject::Site::kEval,
                            "evaluate_candidate_widths");
    faultinject::maybe_stall(faultinject::Site::kEvalStall);
  }
  std::vector<CandidateOutcome> out(ctx.slices.size());
  if (counters != nullptr) {
    counters->slice_class.assign(ctx.slices.size(), ShareClass::kLeader);
  }
  if (ctx.slices.empty()) return out;
  // All of this candidate's routing calls — the lockstep structure pass and
  // any per-width fallbacks — share one routing geometry: switch positions
  // and admissibility are width-invariant, so the hop-length / leakage
  // matrices and class runs are built once per candidate. A caller that
  // evaluates the same candidate through several calls (the sweep's
  // solo-per-width schedule) mints the token itself; otherwise it is minted
  // (and cleared) here.
  const bool own_token =
      scratch != nullptr && scratch->router.geometry_token == 0;
  if (own_token) {
    scratch->router.geometry_token = ++scratch->router.geometry_token_counter;
  }
  std::vector<std::size_t> idx(ctx.slices.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  eval_group(ctx, cand, scratch, fronts, idx, out, counters,
             ctx.slices.size() == 1 ? delta_record : nullptr,
             ctx.slices.size() == 1 ? delta : nullptr);
  if (own_token) scratch->router.geometry_token = 0;
  return out;
}

}  // namespace vinoc::core

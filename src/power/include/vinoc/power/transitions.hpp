// Power-gating transition overhead (extension beyond the paper).
//
// The paper assumes islands can be gated whenever a use case idles them;
// mechanisms are delegated to [5]-[8]. Re-powering an island is not free:
// the sleep transistors must re-charge the virtual rails (energy roughly
// proportional to the island's capacitance, for which its leakage is a
// good proxy) and the wake takes tens of microseconds during which the
// island burns power but does no work. This module charges that cost
// against the gating savings and derives the break-even dwell time — the
// classic question a power-management unit has to answer before gating.
#pragma once

#include <string>
#include <vector>

#include "vinoc/power/gating.hpp"

namespace vinoc::power {

struct TransitionModel {
  /// Time to re-power an island (rail ramp + reset release) [s].
  double wakeup_latency_s = 50e-6;
  /// Energy to re-charge an island's rails per watt of island leakage
  /// (leakage ~ total gate width ~ rail capacitance) [J/W].
  double wakeup_energy_j_per_leak_w = 2.0e-3;
  /// Average dwell time in one use-case scenario before switching [s].
  double scenario_dwell_s = 1.0;
};

struct TransitionReport {
  /// Expected island power-ups per second across the scenario rotation.
  double wakeups_per_s = 0.0;
  /// Average power spent on wake transitions [W].
  double transition_power_w = 0.0;
  /// Gating savings net of transition cost [W]; can go negative for
  /// unrealistically short dwell times.
  double net_saved_w = 0.0;
  double net_saved_fraction = 0.0;
  /// Dwell time at which transitions eat all gating savings [s].
  double breakeven_dwell_s = 0.0;
};

/// Charges wake-up costs against `report` (from evaluate_shutdown_savings).
/// Scenarios are assumed visited in proportion to their time fractions, in
/// list order, cyclically; an island "wakes" on every scenario boundary
/// where it goes inactive -> active. Throws on malformed inputs.
TransitionReport evaluate_transition_overhead(const soc::SocSpec& spec,
                                              const ShutdownReport& report,
                                              const TransitionModel& model = {});

}  // namespace vinoc::power

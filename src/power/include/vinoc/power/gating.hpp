// SoC-level power accounting with island shutdown.
//
// Reproduces the paper's two text claims:
//  * the VI-aware NoC costs ~3% of total SoC dynamic power and <0.5% area
//    (bench_overhead_table compares against a shutdown-oblivious baseline);
//  * gating unused islands recovers a large share of leakage — "even 25% or
//    more reduction in overall system power" (bench_shutdown_savings).
//
// Model: in a use-case scenario only active cores burn dynamic power (idle
// cores are clock-gated either way). Without power gating every core leaks
// all the time; with gating, cores — and the NoC switches/NIs/FIFOs — of an
// inactive island leak only the sleep-transistor retention fraction.
#pragma once

#include <string>
#include <vector>

#include "vinoc/core/topology.hpp"
#include "vinoc/models/technology.hpp"
#include "vinoc/soc/soc_spec.hpp"

namespace vinoc::power {

struct GatingModel {
  /// Fraction of leakage that survives power gating (sleep-transistor and
  /// always-on retention logic).
  double retention_fraction = 0.05;
  /// Fraction of a scenario's *active-core* dynamic power actually drawn
  /// (cores are not 100% busy); applied equally with/without gating.
  double activity_factor = 1.0;
};

/// Static leakage of the NoC attributed to each island. Index
/// spec.island_count() holds the intermediate NoC VI (never gated). FIFO
/// leakage on a crossing link is attributed to the link's destination side.
[[nodiscard]] std::vector<double> noc_leakage_by_island(
    const core::NocTopology& topo, const soc::SocSpec& spec,
    const models::Technology& tech, int link_width_bits = 32);

struct ScenarioPower {
  std::string name;
  double time_fraction = 0.0;
  double power_no_gating_w = 0.0;
  double power_with_gating_w = 0.0;
};

struct ShutdownReport {
  /// Time-weighted average SoC power (cores + NoC) over the scenarios.
  double avg_power_no_gating_w = 0.0;
  double avg_power_with_gating_w = 0.0;
  double saved_w = 0.0;
  double saved_fraction = 0.0;  ///< of avg_power_no_gating_w
  std::vector<ScenarioPower> scenarios;
};

/// Evaluates spec.scenarios (un-covered time is treated as an implicit
/// "all active" scenario). Throws std::invalid_argument if the spec has no
/// scenarios or they are malformed.
[[nodiscard]] ShutdownReport evaluate_shutdown_savings(
    const soc::SocSpec& spec, const core::NocTopology& topo,
    const models::Technology& tech, const GatingModel& gating = {},
    int link_width_bits = 32);

}  // namespace vinoc::power

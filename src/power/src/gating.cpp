#include "vinoc/power/gating.hpp"

#include <stdexcept>

namespace vinoc::power {

std::vector<double> noc_leakage_by_island(const core::NocTopology& topo,
                                          const soc::SocSpec& spec,
                                          const models::Technology& tech,
                                          int link_width_bits) {
  const models::SwitchModel sw_model(tech);
  const models::LinkModel link_model(tech);
  const models::NiModel ni_model(tech);
  const models::BisyncFifoModel fifo_model(tech);

  const std::size_t n_isl = spec.islands.size();
  std::vector<double> leak(n_isl + 1, 0.0);
  auto slot = [n_isl](soc::IslandId isl) {
    return isl == core::kIntermediateIsland ? n_isl : static_cast<std::size_t>(isl);
  };

  for (std::size_t s = 0; s < topo.switches.size(); ++s) {
    const int in = topo.switch_ports_in(static_cast<int>(s));
    const int out = topo.switch_ports_out(static_cast<int>(s));
    leak[slot(topo.switches[s].island)] += sw_model.leakage_w(in, out);
  }
  for (std::size_t c = 0; c < spec.cores.size(); ++c) {
    const auto isl = slot(spec.cores[c].island);
    leak[isl] += ni_model.leakage_w();
    leak[isl] += link_model.leakage_w(topo.ni_wire_mm.at(c), link_width_bits);
  }
  for (const core::TopLink& l : topo.links) {
    const auto dst_isl = slot(topo.switches[static_cast<std::size_t>(l.dst_switch)].island);
    leak[dst_isl] += link_model.leakage_w(l.length_mm, link_width_bits);
    if (l.crosses_island) leak[dst_isl] += fifo_model.leakage_w();
  }
  return leak;
}

ShutdownReport evaluate_shutdown_savings(const soc::SocSpec& spec,
                                         const core::NocTopology& topo,
                                         const models::Technology& tech,
                                         const GatingModel& gating,
                                         int link_width_bits) {
  if (spec.scenarios.empty()) {
    throw std::invalid_argument("evaluate_shutdown_savings: spec has no scenarios");
  }
  if (gating.retention_fraction < 0.0 || gating.retention_fraction > 1.0 ||
      gating.activity_factor < 0.0 || gating.activity_factor > 1.0) {
    throw std::invalid_argument("evaluate_shutdown_savings: bad gating model");
  }
  const std::size_t n_isl = spec.islands.size();

  // Island-level aggregates.
  std::vector<double> island_dyn(n_isl, 0.0);
  std::vector<double> island_leak(n_isl, 0.0);
  for (const soc::CoreSpec& c : spec.cores) {
    island_dyn[static_cast<std::size_t>(c.island)] += c.dynamic_power_w;
    island_leak[static_cast<std::size_t>(c.island)] += c.leakage_power_w;
  }
  const std::vector<double> noc_leak =
      noc_leakage_by_island(topo, spec, tech, link_width_bits);
  const core::Metrics noc_metrics =
      core::compute_metrics(topo, spec, tech, link_width_bits);

  ShutdownReport report;
  auto eval_scenario = [&](const std::string& name, double fraction,
                           const std::vector<bool>& active) {
    ScenarioPower sp;
    sp.name = name;
    sp.time_fraction = fraction;
    for (std::size_t i = 0; i < n_isl; ++i) {
      const double dyn = island_dyn[i] * gating.activity_factor;
      const double leak_i = island_leak[i] + noc_leak[i];
      if (active[i]) {
        sp.power_no_gating_w += dyn + leak_i;
        sp.power_with_gating_w += dyn + leak_i;
      } else {
        sp.power_no_gating_w += leak_i;  // idle but leaking
        sp.power_with_gating_w += leak_i * gating.retention_fraction;
      }
    }
    // NoC dynamic power and intermediate-VI leakage are always on.
    sp.power_no_gating_w += noc_metrics.noc_dynamic_w + noc_leak[n_isl];
    sp.power_with_gating_w += noc_metrics.noc_dynamic_w + noc_leak[n_isl];
    report.avg_power_no_gating_w += fraction * sp.power_no_gating_w;
    report.avg_power_with_gating_w += fraction * sp.power_with_gating_w;
    report.scenarios.push_back(std::move(sp));
  };

  double covered = 0.0;
  for (const soc::Scenario& s : spec.scenarios) {
    if (s.island_active.size() != n_isl) {
      throw std::invalid_argument("evaluate_shutdown_savings: scenario '" +
                                  s.name + "' island_active size mismatch");
    }
    eval_scenario(s.name, s.time_fraction, s.island_active);
    covered += s.time_fraction;
  }
  if (covered < 1.0 - 1e-9) {
    eval_scenario("(uncovered: all active)", 1.0 - covered,
                  std::vector<bool>(n_isl, true));
  }

  report.saved_w = report.avg_power_no_gating_w - report.avg_power_with_gating_w;
  report.saved_fraction = report.avg_power_no_gating_w > 0.0
                              ? report.saved_w / report.avg_power_no_gating_w
                              : 0.0;
  return report;
}

}  // namespace vinoc::power

#include "vinoc/power/transitions.hpp"

#include <stdexcept>

namespace vinoc::power {

TransitionReport evaluate_transition_overhead(const soc::SocSpec& spec,
                                              const ShutdownReport& report,
                                              const TransitionModel& model) {
  if (spec.scenarios.empty()) {
    throw std::invalid_argument("evaluate_transition_overhead: no scenarios");
  }
  if (model.scenario_dwell_s <= 0.0 || model.wakeup_latency_s < 0.0 ||
      model.wakeup_energy_j_per_leak_w < 0.0) {
    throw std::invalid_argument("evaluate_transition_overhead: bad model");
  }

  // Island leakage (cores only; the island's NoC share is second-order).
  std::vector<double> island_leak(spec.islands.size(), 0.0);
  for (const soc::CoreSpec& c : spec.cores) {
    island_leak[static_cast<std::size_t>(c.island)] += c.leakage_power_w;
  }

  // One rotation visits each scenario once, in list order, cyclically.
  const std::size_t n = spec.scenarios.size();
  const double rotation_s = static_cast<double>(n) * model.scenario_dwell_s;
  double energy_per_rotation_j = 0.0;
  double wakeups_per_rotation = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    const soc::Scenario& cur = spec.scenarios[s];
    const soc::Scenario& next = spec.scenarios[(s + 1) % n];
    if (cur.island_active.size() != spec.islands.size() ||
        next.island_active.size() != spec.islands.size()) {
      throw std::invalid_argument(
          "evaluate_transition_overhead: scenario island_active size mismatch");
    }
    for (std::size_t isl = 0; isl < spec.islands.size(); ++isl) {
      if (!spec.islands[isl].can_shutdown) continue;
      if (!cur.island_active[isl] && next.island_active[isl]) {
        ++wakeups_per_rotation;
        // Rail recharge energy plus the wasted wake-latency interval at the
        // island's (leakage) power level.
        energy_per_rotation_j +=
            island_leak[isl] * model.wakeup_energy_j_per_leak_w +
            island_leak[isl] * model.wakeup_latency_s;
      }
    }
  }

  TransitionReport out;
  out.wakeups_per_s = wakeups_per_rotation / rotation_s;
  out.transition_power_w = energy_per_rotation_j / rotation_s;
  const double saved = report.saved_w;
  out.net_saved_w = saved - out.transition_power_w;
  out.net_saved_fraction = report.avg_power_no_gating_w > 0.0
                               ? out.net_saved_w / report.avg_power_no_gating_w
                               : 0.0;
  // transition_power = E / (n * dwell); break-even where it equals `saved`.
  out.breakeven_dwell_s =
      saved > 0.0 ? energy_per_rotation_j / (static_cast<double>(n) * saved) : 0.0;
  return out;
}

}  // namespace vinoc::power

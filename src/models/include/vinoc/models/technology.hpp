// 65 nm technology characterization for the NoC component models.
//
// The paper used the (proprietary) ×pipesLite component library characterized
// at 65 nm [25], extended with bi-synchronous voltage/frequency converters.
// We substitute an analytic model with constants calibrated to public
// ×pipes/ORION-class 65 nm figures. The synthesis algorithm consumes only
// *relative* costs, so the monotonic trends are what matters:
//   * a switch with more ports burns more energy/bit, leaks more, is bigger,
//     and has a longer crossbar critical path (lower attainable frequency);
//   * a longer wire burns more energy/bit and adds delay;
//   * an island crossing adds a bi-sync FIFO (energy + area + 4-cycle
//     latency, per the paper's Section 5).
//
// Unit conventions (enforced by naming): power in W, energy in J, frequency
// in Hz, bandwidth in bits/s, length in mm, area in um^2, delay in s.
#pragma once

namespace vinoc::models {

struct Technology {
  // --- Global -------------------------------------------------------------
  double node_nm = 65.0;
  double vdd_nominal_v = 1.0;
  /// Switch frequencies are snapped up to multiples of this grid (a clock
  /// generator cannot emit arbitrary frequencies).
  double freq_grid_hz = 50.0e6;
  /// Hard ceiling on any NoC clock at this node.
  double max_freq_hz = 1.0e9;

  // --- Switch (crossbar + input buffers + allocator) -----------------------
  /// Crossbar critical path: cp(P) = base + per_log2port * log2(P) [ns].
  /// f_max(P) = 1 / cp(P). Calibrated so a 5x5 switch closes ~1 GHz and a
  /// 16x16 switch ~800 MHz, in line with published 65 nm xpipes numbers.
  double sw_critical_path_base_ns = 0.65;
  double sw_critical_path_per_log2port_ns = 0.15;
  /// Energy to move one bit through a switch: e(P) = base + per_port * P [pJ].
  double sw_energy_base_pj_per_bit = 0.20;
  double sw_energy_per_port_pj_per_bit = 0.02;
  /// Clock-tree + allocator + buffer idle dynamic power, proportional to
  /// P * f [W/Hz] (~1.2 mW per port at 800 MHz). This is the term
  /// island-ing saves: islands whose NI links carry little bandwidth clock
  /// their switches slower (the paper's explanation for why the
  /// communication-based partitioning beats the 1-island reference).
  double sw_idle_power_per_port_w_per_hz = 1.5e-12;
  /// Leakage: l(P) = base + per_port * P  [mW].
  double sw_leakage_base_mw = 0.050;
  double sw_leakage_per_port_mw = 0.020;
  /// Area: a(P) = base + quad * P^2 + lin * P  [um^2]; quadratic term is the
  /// crossbar, linear term the buffers/allocator slice.
  double sw_area_base_um2 = 3000.0;
  double sw_area_per_port2_um2 = 450.0;
  double sw_area_per_port_um2 = 1200.0;
  /// Cycles a head flit spends in a switch (input sample + traverse).
  int sw_pipeline_cycles = 1;

  // --- Link (full-swing wires with repeaters, over-the-cell routed) --------
  double link_energy_pj_per_bit_mm = 0.15;
  /// Repeated-wire propagation delay [ns/mm].
  double wire_delay_ns_per_mm = 0.18;
  /// Repeater leakage per signal wire [mW/mm]; multiplied by data width.
  double link_leakage_mw_per_wire_mm = 0.0004;

  // --- Network interface (protocol conversion + clock crossing to core) ----
  double ni_energy_pj_per_bit = 0.30;
  double ni_area_um2 = 12000.0;
  double ni_leakage_mw = 0.060;

  // --- Bi-synchronous FIFO (voltage + frequency conversion between VIs) ----
  /// Per-bit cost of an island crossing: dual-clock FIFO plus level
  /// shifters on every wire. Deliberately not cheap — this is what makes
  /// high-bandwidth flows across islands costly (the paper's Figure 2
  /// overhead for logical partitioning).
  double fifo_energy_pj_per_bit = 0.50;
  double fifo_area_um2 = 2500.0;
  double fifo_leakage_mw = 0.025;
  /// Latency of an island crossing, in cycles (paper, Section 5: "a 4 cycle
  /// delay is incurred on the voltage-frequency converters").
  int fifo_latency_cycles = 4;

  /// Reference 65 nm parameters used by all experiments.
  [[nodiscard]] static Technology cmos65nm() { return Technology{}; }
};

/// Rounds `freq_hz` up to the technology's frequency grid (at least one step).
double snap_frequency_up(const Technology& tech, double freq_hz);

}  // namespace vinoc::models

// Power / area / delay models of the NoC building blocks.
#pragma once

#include "vinoc/models/technology.hpp"

namespace vinoc::models {

/// Crossbar switch with `in_ports` x `out_ports`. Size for the frequency
/// constraint is max(in, out) — the crossbar critical path scales with the
/// larger dimension.
class SwitchModel {
 public:
  explicit SwitchModel(const Technology& tech) : tech_(tech) {}

  /// Maximum clock the switch can run at; decreasing in port count.
  [[nodiscard]] double max_frequency_hz(int ports) const;

  /// Largest port count operable at `freq_hz` (the paper's max_sw_size).
  /// Returns at least 2 (a 1-port "switch" is meaningless) and caps at 64.
  [[nodiscard]] int max_ports_at(double freq_hz) const;

  /// Dynamic power: traffic-proportional energy + clocked idle power.
  /// `aggregate_bw_bits_per_s` is the sum of all flow bandwidths traversing
  /// the switch (each traversal moves each bit through the crossbar once).
  [[nodiscard]] double dynamic_power_w(int in_ports, int out_ports, double freq_hz,
                                       double aggregate_bw_bits_per_s) const;

  [[nodiscard]] double leakage_w(int in_ports, int out_ports) const;
  [[nodiscard]] double area_um2(int in_ports, int out_ports) const;

 private:
  Technology tech_;
};

/// Point-to-point link of `width_bits` wires and `length_mm` millimetres.
class LinkModel {
 public:
  explicit LinkModel(const Technology& tech) : tech_(tech) {}

  [[nodiscard]] double dynamic_power_w(double length_mm,
                                       double aggregate_bw_bits_per_s) const;
  [[nodiscard]] double leakage_w(double length_mm, int width_bits) const;
  /// Propagation delay of the unpipelined wire [s].
  [[nodiscard]] double wire_delay_s(double length_mm) const;
  /// Longest unpipelined wire that still fits in one cycle at `freq_hz`.
  [[nodiscard]] double max_unpipelined_length_mm(double freq_hz) const;
  /// Peak sustainable bandwidth of the link [bits/s].
  [[nodiscard]] double capacity_bits_per_s(int width_bits, double freq_hz) const;

 private:
  Technology tech_;
};

/// Network interface (core <-> switch adapter).
class NiModel {
 public:
  explicit NiModel(const Technology& tech) : tech_(tech) {}
  [[nodiscard]] double dynamic_power_w(double aggregate_bw_bits_per_s) const;
  [[nodiscard]] double leakage_w() const { return tech_.ni_leakage_mw * 1e-3; }
  [[nodiscard]] double area_um2() const { return tech_.ni_area_um2; }

 private:
  Technology tech_;
};

/// Bi-synchronous FIFO: voltage + frequency conversion between two islands.
class BisyncFifoModel {
 public:
  explicit BisyncFifoModel(const Technology& tech) : tech_(tech) {}
  [[nodiscard]] double dynamic_power_w(double aggregate_bw_bits_per_s) const;
  [[nodiscard]] double leakage_w() const { return tech_.fifo_leakage_mw * 1e-3; }
  [[nodiscard]] double area_um2() const { return tech_.fifo_area_um2; }
  [[nodiscard]] int latency_cycles() const { return tech_.fifo_latency_cycles; }

 private:
  Technology tech_;
};

}  // namespace vinoc::models

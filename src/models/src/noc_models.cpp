#include "vinoc/models/noc_models.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vinoc::models {

namespace {
constexpr double kPjToJ = 1e-12;
constexpr int kMaxSwitchPorts = 64;
}  // namespace

double snap_frequency_up(const Technology& tech, double freq_hz) {
  if (freq_hz <= 0.0) return tech.freq_grid_hz;
  const double steps = std::ceil(freq_hz / tech.freq_grid_hz - 1e-9);
  return std::min(steps * tech.freq_grid_hz, tech.max_freq_hz);
}

double SwitchModel::max_frequency_hz(int ports) const {
  if (ports < 1) throw std::invalid_argument("SwitchModel: ports must be >= 1");
  const double cp_ns = tech_.sw_critical_path_base_ns +
                       tech_.sw_critical_path_per_log2port_ns *
                           std::log2(static_cast<double>(std::max(ports, 2)));
  return std::min(1.0e9 / cp_ns, tech_.max_freq_hz);
}

int SwitchModel::max_ports_at(double freq_hz) const {
  if (freq_hz <= 0.0) throw std::invalid_argument("SwitchModel: freq must be > 0");
  int best = 2;
  for (int p = 2; p <= kMaxSwitchPorts; ++p) {
    if (max_frequency_hz(p) + 1.0 >= freq_hz) {
      best = p;
    } else {
      break;  // max_frequency_hz is decreasing in p
    }
  }
  return best;
}

double SwitchModel::dynamic_power_w(int in_ports, int out_ports, double freq_hz,
                                    double aggregate_bw_bits_per_s) const {
  const int ports = std::max(in_ports, out_ports);
  const double e_bit = (tech_.sw_energy_base_pj_per_bit +
                        tech_.sw_energy_per_port_pj_per_bit * ports) *
                       kPjToJ;
  const double traffic_w = e_bit * aggregate_bw_bits_per_s;
  const double idle_w =
      tech_.sw_idle_power_per_port_w_per_hz * (in_ports + out_ports) * freq_hz;
  return traffic_w + idle_w;
}

double SwitchModel::leakage_w(int in_ports, int out_ports) const {
  const int ports = std::max(in_ports, out_ports);
  return (tech_.sw_leakage_base_mw + tech_.sw_leakage_per_port_mw * ports) * 1e-3;
}

double SwitchModel::area_um2(int in_ports, int out_ports) const {
  const int ports = std::max(in_ports, out_ports);
  const double p = static_cast<double>(ports);
  return tech_.sw_area_base_um2 + tech_.sw_area_per_port2_um2 * p * p +
         tech_.sw_area_per_port_um2 * p;
}

double LinkModel::dynamic_power_w(double length_mm,
                                  double aggregate_bw_bits_per_s) const {
  return tech_.link_energy_pj_per_bit_mm * kPjToJ * length_mm *
         aggregate_bw_bits_per_s;
}

double LinkModel::leakage_w(double length_mm, int width_bits) const {
  return tech_.link_leakage_mw_per_wire_mm * 1e-3 * length_mm * width_bits;
}

double LinkModel::wire_delay_s(double length_mm) const {
  return tech_.wire_delay_ns_per_mm * 1e-9 * length_mm;
}

double LinkModel::max_unpipelined_length_mm(double freq_hz) const {
  if (freq_hz <= 0.0) throw std::invalid_argument("LinkModel: freq must be > 0");
  const double cycle_s = 1.0 / freq_hz;
  return cycle_s / (tech_.wire_delay_ns_per_mm * 1e-9);
}

double LinkModel::capacity_bits_per_s(int width_bits, double freq_hz) const {
  return static_cast<double>(width_bits) * freq_hz;
}

double NiModel::dynamic_power_w(double aggregate_bw_bits_per_s) const {
  return tech_.ni_energy_pj_per_bit * kPjToJ * aggregate_bw_bits_per_s;
}

double BisyncFifoModel::dynamic_power_w(double aggregate_bw_bits_per_s) const {
  return tech_.fifo_energy_pj_per_bit * kPjToJ * aggregate_bw_bits_per_s;
}

}  // namespace vinoc::models

// Intentionally small: Technology is an aggregate of constants; the only
// free function lives in noc_models.cpp to keep one TU per concept. This TU
// exists so the target has a stable archive even if all models become inline.
#include "vinoc/models/technology.hpp"

namespace vinoc::models {}  // namespace vinoc::models

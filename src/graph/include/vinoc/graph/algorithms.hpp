// Graph algorithms used by the synthesis flow.
//
// Dijkstra is the workhorse (routing step of Algorithm 1): it supports a
// per-edge cost override and a node filter so the router can restrict a flow
// to switches in {source VI, destination VI, intermediate VI} — the
// shutdown-safety constraint — without materializing a subgraph per flow.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "vinoc/graph/digraph.hpp"

namespace vinoc::graph {

/// Result of a single-source shortest-path run.
struct ShortestPaths {
  /// dist[n] = cost of the cheapest path, +inf if unreachable.
  std::vector<double> dist;
  /// pred_edge[n] = edge taken into n on the cheapest path, kInvalidEdge at
  /// the source / unreachable nodes.
  std::vector<EdgeId> pred_edge;

  [[nodiscard]] bool reached(NodeId n) const;
  /// Edge ids of the path source..n (empty if n is the source or unreached).
  [[nodiscard]] std::vector<EdgeId> path_edges(const Digraph& g, NodeId n) const;
  /// Node ids of the path source..n inclusive (just {n} if n is the source).
  [[nodiscard]] std::vector<NodeId> path_nodes(const Digraph& g, NodeId n) const;
};

/// Per-edge cost override; return a negative value to forbid the edge.
using EdgeCostFn = std::function<double(const Edge&)>;
/// Node admission filter; nodes failing it are never relaxed through.
using NodeFilterFn = std::function<bool(NodeId)>;

/// Dijkstra from `source`. With no overrides, uses Edge::weight (which must
/// then be >= 0). `cost`/`filter` may be empty. Throws std::invalid_argument
/// on a negative default weight.
ShortestPaths dijkstra(const Digraph& g, NodeId source,
                       const EdgeCostFn& cost = {},
                       const NodeFilterFn& filter = {});

/// BFS order from `source` (ignores weights, honours `filter`).
std::vector<NodeId> bfs_order(const Digraph& g, NodeId source,
                              const NodeFilterFn& filter = {});

/// Weakly connected components; returns component index per node and count.
struct Components {
  std::vector<int> comp_of;
  int count = 0;
};
Components weakly_connected_components(const Digraph& g);

/// Strongly connected components (Tarjan). comp indices are in reverse
/// topological order of the condensation.
Components strongly_connected_components(const Digraph& g);

/// True if every node can reach every other ignoring edge direction.
bool is_weakly_connected(const Digraph& g);

/// Topological order of a DAG; std::nullopt if the graph has a cycle.
std::optional<std::vector<NodeId>> topological_order(const Digraph& g);

/// Global minimum cut weight of the undirected view (Stoer–Wagner).
/// Requires >= 2 nodes and non-negative weights. Also returns one side of an
/// optimal cut. Used by tests to validate the FM partitioner.
struct GlobalMinCut {
  double weight = 0.0;
  std::vector<bool> side;  ///< true = node on the "s" side of the cut.
};
GlobalMinCut stoer_wagner_min_cut(const Digraph& g);

/// Disjoint-set forest over dense integer ids.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);
  int find(int x);
  /// Returns true if the two sets were merged (false if already together).
  bool unite(int a, int b);
  [[nodiscard]] std::size_t set_count() const { return sets_; }

 private:
  std::vector<int> parent_;
  std::vector<int> rank_;
  std::size_t sets_;
};

}  // namespace vinoc::graph

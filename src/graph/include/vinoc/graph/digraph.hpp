// Directed, weighted, labelled graph used throughout vinoc.
//
// Design notes:
//  * Nodes and edges are dense integer ids (NodeId / EdgeId); payloads are
//    stored in parallel vectors, so the structure is cache-friendly and
//    cheaply copyable (the synthesis loop copies communication graphs a lot).
//  * Parallel edges are allowed (two cores may have two distinct flows);
//    callers that need a simple graph can use coalesce().
//  * There is no node/edge removal: synthesis only ever builds graphs and
//    filters them into new ones (see induced_subgraph / filter_edges).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace vinoc::graph {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// A directed edge with a double weight. `user` is an opaque tag callers can
/// use to map edges back to domain objects (e.g. flow indices).
struct Edge {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double weight = 0.0;
  std::int64_t user = -1;
};

/// Directed multigraph with weighted edges and optional node names.
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t node_count) { resize_nodes(node_count); }

  /// Appends `count` unnamed nodes; returns the id of the first new node.
  NodeId add_nodes(std::size_t count);
  /// Appends one named node and returns its id.
  NodeId add_node(std::string name = {});

  /// Adds a directed edge; weight may be any finite value (synthesis uses
  /// bandwidth-derived weights, which are >= 0, but the graph does not care).
  EdgeId add_edge(NodeId src, NodeId dst, double weight = 1.0,
                  std::int64_t user = -1);

  [[nodiscard]] std::size_t node_count() const { return out_adj_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] bool empty() const { return node_count() == 0; }

  [[nodiscard]] const Edge& edge(EdgeId id) const { return edges_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] Edge& edge(EdgeId id) { return edges_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }

  [[nodiscard]] std::span<const EdgeId> out_edges(NodeId n) const {
    return out_adj_.at(static_cast<std::size_t>(n));
  }
  [[nodiscard]] std::span<const EdgeId> in_edges(NodeId n) const {
    return in_adj_.at(static_cast<std::size_t>(n));
  }

  [[nodiscard]] std::size_t out_degree(NodeId n) const { return out_edges(n).size(); }
  [[nodiscard]] std::size_t in_degree(NodeId n) const { return in_edges(n).size(); }
  /// Total degree counting both directions (parallel edges count separately).
  [[nodiscard]] std::size_t degree(NodeId n) const { return out_degree(n) + in_degree(n); }

  /// First edge src->dst, or kInvalidEdge. O(out_degree(src)).
  [[nodiscard]] EdgeId find_edge(NodeId src, NodeId dst) const;
  [[nodiscard]] bool has_edge(NodeId src, NodeId dst) const {
    return find_edge(src, dst) != kInvalidEdge;
  }

  void set_node_name(NodeId n, std::string name);
  [[nodiscard]] const std::string& node_name(NodeId n) const {
    return names_.at(static_cast<std::size_t>(n));
  }
  /// Node id for a name, or kInvalidNode. Names need not be unique; the first
  /// node with the name wins.
  [[nodiscard]] NodeId find_node(std::string_view name) const;

  /// Sum of weights of all edges.
  [[nodiscard]] double total_weight() const;

  /// Sum of weights of edges whose endpoints lie in different blocks of
  /// `block_of` (size node_count()). This is the directed cut metric used to
  /// score partitions.
  [[nodiscard]] double cut_weight(std::span<const int> block_of) const;

  /// New graph with one node per `true` entry of `keep` (size node_count());
  /// keeps edges with both endpoints kept. `old_to_new`, if non-null, is
  /// filled with the node mapping (kInvalidNode for dropped nodes).
  /// (std::vector<bool> rather than a span: the bitset specialization has no
  /// contiguous bool storage.)
  [[nodiscard]] Digraph induced_subgraph(const std::vector<bool>& keep,
                                         std::vector<NodeId>* old_to_new = nullptr) const;

  /// New graph with the same nodes and only edges for which `pred` holds.
  [[nodiscard]] Digraph filter_edges(const std::function<bool(const Edge&)>& pred) const;

  /// New simple graph where parallel edges src->dst are merged, weights
  /// summed, `user` of the first edge kept.
  [[nodiscard]] Digraph coalesce() const;

  /// Undirected coalesced view: for every pair {u,v} with any edge in either
  /// direction, a single edge min(u,v)->max(u,v) with the summed weight.
  [[nodiscard]] Digraph undirected_view() const;

 private:
  void resize_nodes(std::size_t count);
  void check_node(NodeId n) const;

  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_adj_;
  std::vector<std::vector<EdgeId>> in_adj_;
  std::vector<std::string> names_;
};

}  // namespace vinoc::graph

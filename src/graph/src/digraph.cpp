#include "vinoc/graph/digraph.hpp"

#include <algorithm>
#include <map>

namespace vinoc::graph {

void Digraph::resize_nodes(std::size_t count) {
  out_adj_.resize(count);
  in_adj_.resize(count);
  names_.resize(count);
}

void Digraph::check_node(NodeId n) const {
  if (n < 0 || static_cast<std::size_t>(n) >= node_count()) {
    throw std::out_of_range("Digraph: node id " + std::to_string(n) +
                            " out of range (node_count=" +
                            std::to_string(node_count()) + ")");
  }
}

NodeId Digraph::add_nodes(std::size_t count) {
  const auto first = static_cast<NodeId>(node_count());
  resize_nodes(node_count() + count);
  return first;
}

NodeId Digraph::add_node(std::string name) {
  const NodeId id = add_nodes(1);
  names_[static_cast<std::size_t>(id)] = std::move(name);
  return id;
}

EdgeId Digraph::add_edge(NodeId src, NodeId dst, double weight, std::int64_t user) {
  check_node(src);
  check_node(dst);
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{src, dst, weight, user});
  out_adj_[static_cast<std::size_t>(src)].push_back(id);
  in_adj_[static_cast<std::size_t>(dst)].push_back(id);
  return id;
}

EdgeId Digraph::find_edge(NodeId src, NodeId dst) const {
  check_node(src);
  check_node(dst);
  for (const EdgeId e : out_edges(src)) {
    if (edges_[static_cast<std::size_t>(e)].dst == dst) return e;
  }
  return kInvalidEdge;
}

void Digraph::set_node_name(NodeId n, std::string name) {
  check_node(n);
  names_[static_cast<std::size_t>(n)] = std::move(name);
}

NodeId Digraph::find_node(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<NodeId>(i);
  }
  return kInvalidNode;
}

double Digraph::total_weight() const {
  double sum = 0.0;
  for (const Edge& e : edges_) sum += e.weight;
  return sum;
}

double Digraph::cut_weight(std::span<const int> block_of) const {
  if (block_of.size() != node_count()) {
    throw std::invalid_argument("cut_weight: block_of size mismatch");
  }
  double cut = 0.0;
  for (const Edge& e : edges_) {
    if (block_of[static_cast<std::size_t>(e.src)] !=
        block_of[static_cast<std::size_t>(e.dst)]) {
      cut += e.weight;
    }
  }
  return cut;
}

Digraph Digraph::induced_subgraph(const std::vector<bool>& keep,
                                  std::vector<NodeId>* old_to_new) const {
  if (keep.size() != node_count()) {
    throw std::invalid_argument("induced_subgraph: keep size mismatch");
  }
  Digraph sub;
  std::vector<NodeId> map(node_count(), kInvalidNode);
  for (std::size_t i = 0; i < node_count(); ++i) {
    if (keep[i]) {
      map[i] = sub.add_node(names_[i]);
    }
  }
  for (const Edge& e : edges_) {
    const NodeId s = map[static_cast<std::size_t>(e.src)];
    const NodeId d = map[static_cast<std::size_t>(e.dst)];
    if (s != kInvalidNode && d != kInvalidNode) {
      sub.add_edge(s, d, e.weight, e.user);
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return sub;
}

Digraph Digraph::filter_edges(const std::function<bool(const Edge&)>& pred) const {
  Digraph out;
  out.resize_nodes(node_count());
  out.names_ = names_;
  for (const Edge& e : edges_) {
    if (pred(e)) out.add_edge(e.src, e.dst, e.weight, e.user);
  }
  return out;
}

Digraph Digraph::coalesce() const {
  Digraph out;
  out.resize_nodes(node_count());
  out.names_ = names_;
  std::map<std::pair<NodeId, NodeId>, std::pair<double, std::int64_t>> merged;
  for (const Edge& e : edges_) {
    auto [it, inserted] = merged.try_emplace({e.src, e.dst}, std::pair{e.weight, e.user});
    if (!inserted) it->second.first += e.weight;
  }
  for (const auto& [key, val] : merged) {
    out.add_edge(key.first, key.second, val.first, val.second);
  }
  return out;
}

Digraph Digraph::undirected_view() const {
  Digraph out;
  out.resize_nodes(node_count());
  out.names_ = names_;
  std::map<std::pair<NodeId, NodeId>, double> merged;
  for (const Edge& e : edges_) {
    const auto key = std::minmax(e.src, e.dst);
    merged[{key.first, key.second}] += e.weight;
  }
  for (const auto& [key, w] : merged) {
    out.add_edge(key.first, key.second, w);
  }
  return out;
}

}  // namespace vinoc::graph

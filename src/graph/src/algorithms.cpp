#include "vinoc/graph/algorithms.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stack>

namespace vinoc::graph {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

bool ShortestPaths::reached(NodeId n) const {
  return std::isfinite(dist.at(static_cast<std::size_t>(n)));
}

std::vector<EdgeId> ShortestPaths::path_edges(const Digraph& g, NodeId n) const {
  std::vector<EdgeId> path;
  if (!reached(n)) return path;
  NodeId cur = n;
  while (pred_edge.at(static_cast<std::size_t>(cur)) != kInvalidEdge) {
    const EdgeId e = pred_edge[static_cast<std::size_t>(cur)];
    path.push_back(e);
    cur = g.edge(e).src;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<NodeId> ShortestPaths::path_nodes(const Digraph& g, NodeId n) const {
  std::vector<NodeId> nodes;
  if (!reached(n)) return nodes;
  const auto edges = path_edges(g, n);
  if (edges.empty()) return {n};
  nodes.push_back(g.edge(edges.front()).src);
  for (const EdgeId e : edges) nodes.push_back(g.edge(e).dst);
  return nodes;
}

ShortestPaths dijkstra(const Digraph& g, NodeId source, const EdgeCostFn& cost,
                       const NodeFilterFn& filter) {
  const std::size_t n = g.node_count();
  ShortestPaths sp;
  sp.dist.assign(n, kInf);
  sp.pred_edge.assign(n, kInvalidEdge);
  if (filter && !filter(source)) return sp;
  sp.dist[static_cast<std::size_t>(source)] = 0.0;

  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > sp.dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    for (const EdgeId eid : g.out_edges(u)) {
      const Edge& e = g.edge(eid);
      double w = e.weight;
      if (cost) {
        w = cost(e);
        if (w < 0.0) continue;  // forbidden edge
      } else if (w < 0.0) {
        throw std::invalid_argument("dijkstra: negative edge weight without cost override");
      }
      if (filter && !filter(e.dst)) continue;
      const double nd = d + w;
      if (nd < sp.dist[static_cast<std::size_t>(e.dst)]) {
        sp.dist[static_cast<std::size_t>(e.dst)] = nd;
        sp.pred_edge[static_cast<std::size_t>(e.dst)] = eid;
        pq.emplace(nd, e.dst);
      }
    }
  }
  return sp;
}

std::vector<NodeId> bfs_order(const Digraph& g, NodeId source,
                              const NodeFilterFn& filter) {
  std::vector<NodeId> order;
  if (filter && !filter(source)) return order;
  std::vector<bool> seen(g.node_count(), false);
  std::queue<NodeId> q;
  q.push(source);
  seen[static_cast<std::size_t>(source)] = true;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    order.push_back(u);
    for (const EdgeId eid : g.out_edges(u)) {
      const NodeId v = g.edge(eid).dst;
      if (seen[static_cast<std::size_t>(v)]) continue;
      if (filter && !filter(v)) continue;
      seen[static_cast<std::size_t>(v)] = true;
      q.push(v);
    }
  }
  return order;
}

Components weakly_connected_components(const Digraph& g) {
  Components c;
  const std::size_t n = g.node_count();
  c.comp_of.assign(n, -1);
  UnionFind uf(n);
  for (const Edge& e : g.edges()) uf.unite(e.src, e.dst);
  std::vector<int> root_to_comp(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const int r = uf.find(static_cast<int>(i));
    if (root_to_comp[static_cast<std::size_t>(r)] == -1) {
      root_to_comp[static_cast<std::size_t>(r)] = c.count++;
    }
    c.comp_of[i] = root_to_comp[static_cast<std::size_t>(r)];
  }
  return c;
}

Components strongly_connected_components(const Digraph& g) {
  // Iterative Tarjan to avoid deep recursion on long chains.
  const std::size_t n = g.node_count();
  Components out;
  out.comp_of.assign(n, -1);
  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  int next_index = 0;

  struct Frame {
    NodeId node;
    std::size_t edge_pos;
  };

  for (std::size_t start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    std::vector<Frame> frames;
    frames.push_back({static_cast<NodeId>(start), 0});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(static_cast<NodeId>(start));
    on_stack[start] = true;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto u = static_cast<std::size_t>(f.node);
      const auto outs = g.out_edges(f.node);
      if (f.edge_pos < outs.size()) {
        const NodeId v = g.edge(outs[f.edge_pos++]).dst;
        const auto vi = static_cast<std::size_t>(v);
        if (index[vi] == -1) {
          index[vi] = lowlink[vi] = next_index++;
          stack.push_back(v);
          on_stack[vi] = true;
          frames.push_back({v, 0});
        } else if (on_stack[vi]) {
          lowlink[u] = std::min(lowlink[u], index[vi]);
        }
      } else {
        if (lowlink[u] == index[u]) {
          while (true) {
            const NodeId w = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = false;
            out.comp_of[static_cast<std::size_t>(w)] = out.count;
            if (w == f.node) break;
          }
          ++out.count;
        }
        const NodeId done = f.node;
        frames.pop_back();
        if (!frames.empty()) {
          const auto p = static_cast<std::size_t>(frames.back().node);
          lowlink[p] = std::min(lowlink[p], lowlink[static_cast<std::size_t>(done)]);
        }
      }
    }
  }
  return out;
}

bool is_weakly_connected(const Digraph& g) {
  if (g.node_count() <= 1) return true;
  return weakly_connected_components(g).count == 1;
}

std::optional<std::vector<NodeId>> topological_order(const Digraph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::size_t> indeg(n, 0);
  for (const Edge& e : g.edges()) ++indeg[static_cast<std::size_t>(e.dst)];
  std::queue<NodeId> q;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) q.push(static_cast<NodeId>(i));
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    order.push_back(u);
    for (const EdgeId eid : g.out_edges(u)) {
      const NodeId v = g.edge(eid).dst;
      if (--indeg[static_cast<std::size_t>(v)] == 0) q.push(v);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

GlobalMinCut stoer_wagner_min_cut(const Digraph& g) {
  const std::size_t n = g.node_count();
  if (n < 2) throw std::invalid_argument("stoer_wagner_min_cut: need >= 2 nodes");

  // Dense symmetric weight matrix over the undirected view.
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (const Edge& e : g.edges()) {
    if (e.weight < 0.0) {
      throw std::invalid_argument("stoer_wagner_min_cut: negative weight");
    }
    if (e.src == e.dst) continue;
    w[static_cast<std::size_t>(e.src)][static_cast<std::size_t>(e.dst)] += e.weight;
    w[static_cast<std::size_t>(e.dst)][static_cast<std::size_t>(e.src)] += e.weight;
  }

  // merged_into[i] = list of original nodes contracted into supernode i.
  std::vector<std::vector<NodeId>> merged(n);
  for (std::size_t i = 0; i < n; ++i) merged[i] = {static_cast<NodeId>(i)};
  std::vector<bool> gone(n, false);

  GlobalMinCut best;
  best.weight = kInf;
  best.side.assign(n, false);

  for (std::size_t phase = 0; phase + 1 < n; ++phase) {
    std::vector<double> conn(n, 0.0);
    std::vector<bool> added(n, false);
    NodeId prev = kInvalidNode;
    NodeId last = kInvalidNode;
    for (std::size_t step = 0; step + phase < n; ++step) {
      NodeId pick = kInvalidNode;
      double best_conn = -1.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (gone[i] || added[i]) continue;
        if (conn[i] > best_conn) {
          best_conn = conn[i];
          pick = static_cast<NodeId>(i);
        }
      }
      added[static_cast<std::size_t>(pick)] = true;
      prev = last;
      last = pick;
      for (std::size_t i = 0; i < n; ++i) {
        if (!gone[i] && !added[i]) conn[i] += w[static_cast<std::size_t>(pick)][i];
      }
    }
    // Cut-of-the-phase: `last` alone vs. the rest.
    const double cut = [&] {
      double c = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (!gone[i] && static_cast<NodeId>(i) != last) {
          c += w[static_cast<std::size_t>(last)][i];
        }
      }
      return c;
    }();
    if (cut < best.weight) {
      best.weight = cut;
      std::fill(best.side.begin(), best.side.end(), false);
      for (const NodeId orig : merged[static_cast<std::size_t>(last)]) {
        best.side[static_cast<std::size_t>(orig)] = true;
      }
    }
    // Merge `last` into `prev`.
    const auto lp = static_cast<std::size_t>(prev);
    const auto ll = static_cast<std::size_t>(last);
    for (std::size_t i = 0; i < n; ++i) {
      w[lp][i] += w[ll][i];
      w[i][lp] += w[i][ll];
    }
    w[lp][lp] = 0.0;
    merged[lp].insert(merged[lp].end(), merged[ll].begin(), merged[ll].end());
    gone[ll] = true;
  }
  return best;
}

UnionFind::UnionFind(std::size_t n)
    : parent_(n), rank_(n, 0), sets_(n) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
}

int UnionFind::find(int x) {
  while (parent_[static_cast<std::size_t>(x)] != x) {
    parent_[static_cast<std::size_t>(x)] =
        parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
    x = parent_[static_cast<std::size_t>(x)];
  }
  return x;
}

bool UnionFind::unite(int a, int b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (rank_[static_cast<std::size_t>(a)] < rank_[static_cast<std::size_t>(b)]) std::swap(a, b);
  parent_[static_cast<std::size_t>(b)] = a;
  if (rank_[static_cast<std::size_t>(a)] == rank_[static_cast<std::size_t>(b)]) {
    ++rank_[static_cast<std::size_t>(a)];
  }
  --sets_;
  return true;
}

}  // namespace vinoc::graph
